package automaton

import (
	"math/rand"
	"strings"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

const fig1 = `<db>
<part><pname>keyboard</pname>
  <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
  <supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>
  <subPart><part><pname>key</pname>
    <supplier><sname>Acme</sname><price>20</price><country>CN</country></supplier>
  </part></subPart>
</part>
<part><pname>mouse</pname>
  <supplier><sname>Dell</sname><price>9</price><country>A</country></supplier>
</part>
</db>`

func mustNFA(t *testing.T, expr string) *NFA {
	t.Helper()
	m, err := New(xpath.MustParse(expr))
	if err != nil {
		t.Fatalf("New(%s): %v", expr, err)
	}
	return m
}

// matchByNFA walks doc with StepDirect and returns all matched nodes.
func matchByNFA(m *NFA, doc *tree.Node) []*tree.Node {
	var out []*tree.Node
	var walk func(n *tree.Node, s StateSet)
	walk = func(n *tree.Node, s StateSet) {
		for _, c := range n.Children {
			if c.Kind != tree.Element {
				continue
			}
			next := m.StepDirect(s, c)
			if next.Empty() {
				continue
			}
			if m.Matches(next) {
				out = append(out, c)
			}
			walk(c, next)
		}
	}
	walk(doc, m.InitialSet())
	return out
}

func sameNodes(a, b []*tree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[*tree.Node]struct{}, len(a))
	for _, n := range a {
		set[n] = struct{}{}
	}
	for _, n := range b {
		if _, ok := set[n]; !ok {
			return false
		}
	}
	return true
}

func TestExample31Structure(t *testing.T) {
	// Fig. 5: //part[q1]//part[q2] has 5 states: start, two '//' states
	// with self-loops, two part states.
	m := mustNFA(t, `//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`)
	if m.Size() != 5 {
		t.Fatalf("states = %d, want 5\n%s", m.Size(), m)
	}
	loops := 0
	for _, st := range m.States {
		if st.SelfLoop {
			loops++
		}
	}
	if loops != 2 {
		t.Errorf("self-loops = %d, want 2 (one per '//')", loops)
	}
	start := m.States[m.Start]
	if start.Eps < 0 || !m.States[start.Eps].SelfLoop {
		t.Errorf("start should have ε to a '//' state:\n%s", m)
	}
	if !m.States[m.Final].Final || m.States[m.Final].Quals == nil {
		t.Errorf("final state should carry q2:\n%s", m)
	}
	if !strings.Contains(m.String(), "final") {
		t.Errorf("String() missing final marker:\n%s", m)
	}
}

func TestLinearSize(t *testing.T) {
	// |Mp| = O(|p|): one state per step plus one per '//'.
	m := mustNFA(t, "a/b/c/d/e")
	if m.Size() != 6 {
		t.Errorf("a/b/c/d/e: %d states, want 6", m.Size())
	}
	m = mustNFA(t, "a//b//c")
	if m.Size() != 6 {
		t.Errorf("a//b//c: %d states, want 6 (3 labels + start + 2 desc)", m.Size())
	}
}

func TestNFAMatchesSelectOnFig1(t *testing.T) {
	doc, err := sax.ParseString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	exprs := []string{
		"db/part",
		"db/part/pname",
		"//part",
		"//part//part",
		"//price",
		"//supplier/price",
		"db//supplier",
		"*/part",
		"db/*/supplier",
		`//part[pname = "keyboard"]`,
		`//part[pname = "keyboard"]//part`,
		`//supplier[country = "A"]/price`,
		`//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`,
		`//part[.//supplier/price > 10]`,
		`db/part[subPart/part/pname = "key"]/supplier`,
		"nosuch/part",
		"db/part/part",
	}
	for _, e := range exprs {
		m := mustNFA(t, e)
		got := matchByNFA(m, doc)
		want := xpath.Select(doc, m.Path)
		if !sameNodes(got, want) {
			t.Errorf("%s: NFA matched %d nodes, Select %d\n%s", e, len(got), len(want), m)
		}
	}
}

// Property: NFA matching agrees with the reference Select on random
// documents and random paths.
func TestNFAMatchesSelectRandom(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	checked := 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := tree.Generate(rng, genOpts)
		p := xpath.RandomPath(rng, cfg)
		m, err := New(p)
		if err != nil {
			continue // paths outside the NFA fragment are allowed to be rejected
		}
		checked++
		got := matchByNFA(m, doc)
		want := xpath.Select(doc, p)
		if !sameNodes(got, want) {
			t.Fatalf("seed %d: %s: NFA %d nodes, Select %d nodes", seed, p, len(got), len(want))
		}
	}
	if checked < 300 {
		t.Fatalf("only %d/400 random paths were NFA-compatible; generator too restrictive", checked)
	}
}

func TestNewRejects(t *testing.T) {
	bad := []*xpath.Path{
		xpath.MustParse("."),
		{Steps: []xpath.Step{{Axis: xpath.Attribute, Label: "id"}}},
		{Steps: []xpath.Step{{Axis: xpath.DescendantOrSelf}}},
		{Steps: []xpath.Step{
			{Axis: xpath.Child, Label: "a"},
			{Axis: xpath.DescendantOrSelf},
		}},
		xpath.MustParse(`.[x = "1"]/a`), // qualified self at head
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d (%s): New accepted invalid selection path", i, p)
		}
	}
	// a//.[q]/b: qualified self after '//' is rejected.
	p := xpath.MustParse("a//b")
	p.Steps = append(p.Steps[:2:2], xpath.Step{Axis: xpath.Self, Quals: []xpath.Qual{&xpath.TrueQual{}}}, p.Steps[2])
	if _, err := New(p); err == nil {
		t.Errorf("qualified self after '//' should be rejected")
	}
}

func TestSelfStepFolding(t *testing.T) {
	doc, err := sax.ParseString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	// a/./b ≡ a/b; a/.[q]/b ≡ a[q]/b.
	m1 := mustNFA(t, "db/./part")
	m2 := mustNFA(t, "db/part")
	if m1.Size() != m2.Size() {
		t.Errorf("self step not folded: %d vs %d states", m1.Size(), m2.Size())
	}
	m3 := mustNFA(t, `db/.[part/pname = "keyboard"]/part`)
	got := matchByNFA(m3, doc)
	want := xpath.Select(doc, m3.Path)
	if !sameNodes(got, want) {
		t.Errorf("folded self qualifier: NFA %d, Select %d", len(got), len(want))
	}
}

func TestStateSetOps(t *testing.T) {
	m := mustNFA(t, "a/b/c")
	s := m.NewSet()
	if !s.Empty() {
		t.Errorf("new set not empty")
	}
	s.Add(0)
	s.Add(2)
	if !s.Has(0) || !s.Has(2) || s.Has(1) {
		t.Errorf("membership wrong: %v", s.IDs())
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Errorf("clone not equal")
	}
	c.Add(1)
	if c.Equal(s) || s.Has(1) {
		t.Errorf("clone shares storage")
	}
	if got := s.IDs(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("IDs = %v", got)
	}
	if s.Equal(StateSet{}) {
		t.Errorf("sets of different widths cannot be equal")
	}
}

func TestInitialSetEpsClosure(t *testing.T) {
	// For //part//part the initial set is {s0, s1} (Example 3.2).
	m := mustNFA(t, "//part//part")
	ids := m.InitialSet().IDs()
	if len(ids) != 2 {
		t.Fatalf("initial set = %v, want 2 states\n%s", ids, m)
	}
}

func TestStepUncheckedSuperset(t *testing.T) {
	doc, err := sax.ParseString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNFA(t, `db/part[pname = "nothing"]`)
	s := m.InitialSet()
	root := doc.Root()
	s = m.Step(s, root.Label, nil)
	part := root.Children[0]
	checked := m.StepDirect(s, part)
	unchecked := m.Step(s, part.Label, nil)
	if m.Matches(checked) {
		t.Errorf("qualifier should have failed")
	}
	if !m.Matches(unchecked) {
		t.Errorf("unchecked step should reach the final state")
	}
}

func TestEnteredQuals(t *testing.T) {
	m := mustNFA(t, `db/part[pname = "keyboard"]`)
	s := m.InitialSet()
	if got := m.EnteredQuals(s, "db"); len(got) != 0 {
		t.Errorf("db step should enter no qualified state, got %v", got)
	}
	s = m.Step(s, "db", nil)
	got := m.EnteredQuals(s, "part")
	if len(got) != 1 {
		t.Fatalf("part step should enter one qualified state, got %v", got)
	}
	if m.LQ.String(got[0]) == "" {
		t.Errorf("qualifier id not renderable")
	}
	if got := m.EnteredQuals(s, "other"); len(got) != 0 {
		t.Errorf("non-matching label entered states: %v", got)
	}
}

func TestWildcardTransitions(t *testing.T) {
	doc, err := sax.ParseString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"*", "*/*", "//*", "db//*", `*[pname]`} {
		m := mustNFA(t, e)
		got := matchByNFA(m, doc)
		want := xpath.Select(doc, m.Path)
		if !sameNodes(got, want) {
			t.Errorf("%s: NFA %d, Select %d", e, len(got), len(want))
		}
	}
}
