// Package automaton implements the selecting NFA of Fan, Cong and Bohannon
// (SIGMOD 2007, §3.2/§3.4) together with the machinery of the filtering NFA
// of §5.
//
// A selecting NFA Mp for an X expression p = β1[q1]/…/βk[qk] has states
// (si, [qi]); consuming a node's label moves the state set forward, a '//'
// step contributes an ε-transition into a state with a '*' self-loop
// (Fig. 5), and a node is selected exactly when the final state is entered
// while its qualifier holds at the node.
//
// The filtering NFA of the paper extends Mp with the qualifier paths so
// that a bottom-up pass knows which (sub-)qualifiers to evaluate at each
// node and when a subtree can be pruned. This implementation represents the
// qualifier-path positions by the interned normal-form expression ids of
// xpath.LQ instead of extra automaton states: NeedSet propagation (see
// needs.go) computes exactly the list LQ(S) of §5 at every node. The two
// formulations accept the same nodes and prune the same subtrees.
package automaton

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// State is one state (si, [qi]) of a selecting NFA.
type State struct {
	ID int
	// Quals is the qualifier [qi] as parsed (nil means [true]); it is
	// checked when the state is entered by consuming a node.
	Quals []xpath.Qual
	// QualID is the same qualifier in the NFA's qualifier list LQ.
	QualID int
	// SelfLoop marks a '//' state carrying the '*' self-cycle.
	SelfLoop bool
	// Next is the state entered by consuming a node that passes the
	// label test (NextLabel, or any element if NextWild); -1 at the end
	// of the path.
	Next      int
	NextLabel string
	NextWild  bool
	// Eps is the ε-successor introduced by a following '//' step; -1 if
	// none.
	Eps int
	// Final marks the accepting state (sk, [qk]).
	Final bool
}

// NFA is a selecting NFA for an X selection path.
type NFA struct {
	States []State
	Start  int
	Final  int
	// LQ holds the normalized qualifiers of all states (shared so that
	// the bottom-up algorithms evaluate common sub-expressions once).
	LQ *xpath.LQ
	// Path is the expression the NFA was built from.
	Path *xpath.Path
}

// New builds the selecting NFA Mp for path p. It returns an error for
// paths outside the transform-query fragment: attribute steps on the
// selection spine, a bare self path, or qualified self steps that cannot be
// folded into a preceding step.
func New(p *xpath.Path) (*NFA, error) {
	m := &NFA{LQ: xpath.NewLQ(), Path: p}
	// State 0 is the start state (s0, [true]).
	m.States = append(m.States, State{ID: 0, Next: -1, Eps: -1, QualID: m.LQ.True()})

	// Fold self steps into their predecessors and check step validity.
	type flatStep struct {
		desc  bool // '//'
		wild  bool
		label string
		quals []xpath.Qual
	}
	var steps []flatStep
	for _, s := range p.Steps {
		switch s.Axis {
		case xpath.Attribute:
			return nil, errors.New("automaton: attribute step in selection path")
		case xpath.Self:
			if len(s.Quals) == 0 {
				continue
			}
			if len(steps) == 0 {
				return nil, errors.New("automaton: qualified self step at path head")
			}
			last := &steps[len(steps)-1]
			if last.desc {
				return nil, errors.New("automaton: qualified self step after '//'")
			}
			last.quals = append(last.quals, s.Quals...)
		case xpath.DescendantOrSelf:
			steps = append(steps, flatStep{desc: true})
		case xpath.Child:
			steps = append(steps, flatStep{wild: s.Wildcard, label: s.Label, quals: s.Quals})
		}
	}
	consuming := 0
	for _, s := range steps {
		if !s.desc {
			consuming++
		}
	}
	if consuming == 0 {
		return nil, errors.New("automaton: selection path must contain at least one label or '*' step")
	}

	cur := 0
	for _, s := range steps {
		if s.desc {
			// β = '//': ε from cur to a fresh self-looping state.
			id := len(m.States)
			m.States = append(m.States, State{ID: id, SelfLoop: true, Next: -1, Eps: -1, QualID: m.LQ.True()})
			m.States[cur].Eps = id
			cur = id
			continue
		}
		qid, err := m.LQ.AddQuals(s.quals)
		if err != nil {
			return nil, err
		}
		id := len(m.States)
		m.States = append(m.States, State{ID: id, Quals: s.quals, QualID: qid, Next: -1, Eps: -1})
		st := &m.States[cur]
		st.Next = id
		st.NextLabel = s.label
		st.NextWild = s.wild
		cur = id
	}
	// A trailing '//' would leave cur on a self-loop state; the parser
	// cannot produce it, but guard anyway.
	if m.States[cur].SelfLoop {
		return nil, errors.New("automaton: selection path ends in '//'")
	}
	m.Final = cur
	m.States[cur].Final = true
	return m, nil
}

// Size returns the number of states; it is O(|p|) as claimed in §3.4.
func (m *NFA) Size() int { return len(m.States) }

// StateSet is a bit set over the NFA's states.
type StateSet []uint64

// NewSet returns an empty state set sized for m.
func (m *NFA) NewSet() StateSet {
	return make(StateSet, (len(m.States)+63)/64)
}

// Add inserts state id.
func (s StateSet) Add(id int) { s[id/64] |= 1 << (uint(id) % 64) }

// Has reports membership of state id.
func (s StateSet) Has(id int) bool { return s[id/64]&(1<<(uint(id)%64)) != 0 }

// Empty reports whether no state is set.
func (s StateSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s StateSet) Clone() StateSet {
	c := make(StateSet, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two sets hold the same states.
func (s StateSet) Equal(o StateSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// IDs returns the member state ids in ascending order.
func (s StateSet) IDs() []int {
	var out []int
	s.ForEach(func(id int) { out = append(out, id) })
	return out
}

// ForEach calls fn for every member state id in ascending order, without
// allocating; it is the hot-path iterator of the evaluators.
func (s StateSet) ForEach(fn func(id int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(w*64 + b)
		}
	}
}

// addEps adds id and its ε-closure to set. ε-targets are '//' states whose
// qualifier is [true] by construction, so no checking is needed — this is
// the ε-closure step of nextStates() (Fig. 4).
func (m *NFA) addEps(set StateSet, id int) {
	for id >= 0 {
		if set.Has(id) {
			return
		}
		set.Add(id)
		id = m.States[id].Eps
	}
}

// InitialSet returns the ε-closure of the start state — the state set in
// force at the document node, before any label has been consumed.
func (m *NFA) InitialSet() StateSet {
	s := m.NewSet()
	m.addEps(s, m.Start)
	return s
}

// Step implements nextStates() of Fig. 4: from state set s, consume an
// element labelled label. keep is the checkp() hook deciding whether a
// candidate target state's qualifier holds at the node being consumed; a
// nil keep accepts every candidate, which yields the unchecked transition
// relation used by the bottomUp pass (Fig. 9, lines 1-2).
func (m *NFA) Step(s StateSet, label string, keep func(stateID int) bool) StateSet {
	out := m.NewSet()
	m.StepInto(s, label, keep, out)
	return out
}

// StepInto is Step writing into out (cleared first), for per-element hot
// loops that reuse state-set storage.
func (m *NFA) StepInto(s StateSet, label string, keep func(stateID int) bool, out StateSet) {
	for i := range out {
		out[i] = 0
	}
	s.ForEach(func(id int) {
		st := &m.States[id]
		if st.SelfLoop {
			// The '*' self-cycle consumes any element.
			m.addEps(out, id)
		}
		if st.Next >= 0 && (st.NextWild || st.NextLabel == label) {
			if keep == nil || keep(st.Next) {
				m.addEps(out, st.Next)
			}
		}
	})
}

// StepDirect consumes element n checking qualifiers by direct recursive
// evaluation (the GENTOP strategy).
func (m *NFA) StepDirect(s StateSet, n *tree.Node) StateSet {
	return m.Step(s, n.Label, func(id int) bool {
		for _, q := range m.States[id].Quals {
			if !xpath.EvalQual(n, q) {
				return false
			}
		}
		return true
	})
}

// Matches reports whether consuming the node that produced s selected it,
// i.e. whether the final state was entered.
func (m *NFA) Matches(s StateSet) bool { return s.Has(m.Final) }

// EnteredQuals returns the qualifier ids (into m.LQ) of the states entered
// by consuming an element labelled label from state set s, without
// checking them — the top-level qualifiers that must be evaluated at that
// node by the bottom-up pass.
func (m *NFA) EnteredQuals(s StateSet, label string) []int {
	var out []int
	s.ForEach(func(id int) {
		st := &m.States[id]
		if st.Next >= 0 && (st.NextWild || st.NextLabel == label) {
			if len(m.States[st.Next].Quals) > 0 {
				out = append(out, m.States[st.Next].QualID)
			}
		}
	})
	return out
}

// Transition is one consuming transition of the selecting NFA, in path
// order — the planner's view of the automaton: which label each step
// consumes, whether it fires at any depth (a '//' self-loop source) or
// only one level down, and whether entering it checks a qualifier. The
// cost estimator intersects these label tests with the per-symbol
// counts of the document's statistics to estimate step cardinalities.
type Transition struct {
	// Label is the consumed element label; empty when Wild.
	Label string
	// Wild marks a '*' step consuming any element.
	Wild bool
	// Desc marks a transition out of a '//' self-loop state: it can
	// fire at every depth below the previous frontier, so a guided
	// walk must scan whole subtrees to feed it.
	Desc bool
	// Qualified reports whether the entered state carries a qualifier
	// ([q] != [true]) that must hold at the consumed node.
	Qualified bool
	// Quals is the entered state's qualifier list (nil when
	// Qualified is false), for estimators that want to weigh
	// individual predicates.
	Quals []xpath.Qual
	// Final marks the transition into the accepting state: nodes
	// consumed here (with the qualifier holding) are the selected set.
	Final bool
}

// Transitions returns the NFA's consuming transitions in path order.
// The selecting NFA of an X expression is a chain (ε-transitions only
// insert '//' self-loop states), so the list is exactly the sequence of
// label tests a document path must pass to be selected.
func (m *NFA) Transitions() []Transition {
	out := make([]Transition, 0, len(m.States))
	cur := m.Start
	for {
		st := &m.States[cur]
		if st.Eps >= 0 {
			// The '//' step: descend into the self-loop state; the
			// transition out of it is flagged Desc below.
			cur = st.Eps
			continue
		}
		if st.Next < 0 {
			return out
		}
		nx := &m.States[st.Next]
		out = append(out, Transition{
			Label:     st.NextLabel,
			Wild:      st.NextWild,
			Desc:      st.SelfLoop,
			Qualified: len(nx.Quals) > 0,
			Quals:     nx.Quals,
			Final:     nx.Final,
		})
		cur = st.Next
	}
}

// String renders the automaton for diagnostics, in the spirit of Fig. 5.
func (m *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA(%s) states=%d\n", m.Path.String(), len(m.States))
	for i := range m.States {
		st := &m.States[i]
		fmt.Fprintf(&b, "  s%d", st.ID)
		if st.ID == m.Start {
			b.WriteString(" start")
		}
		if st.Final {
			b.WriteString(" final")
		}
		if len(st.Quals) > 0 {
			fmt.Fprintf(&b, " [%s]", m.LQ.String(st.QualID))
		}
		if st.SelfLoop {
			b.WriteString(" -*→ self")
		}
		if st.Next >= 0 {
			lbl := st.NextLabel
			if st.NextWild {
				lbl = "*"
			}
			fmt.Fprintf(&b, " -%s→ s%d", lbl, st.Next)
		}
		if st.Eps >= 0 {
			fmt.Fprintf(&b, " -ε→ s%d", st.Eps)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
