package compose

import (
	"context"
	"strings"
	"testing"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// planOf compiles a stack of transform sources and a user query source.
func planOf(t *testing.T, qSrc string, qtSrcs ...string) *Plan {
	t.Helper()
	layers := make([]*core.Compiled, len(qtSrcs))
	for i, src := range qtSrcs {
		layers[i] = compileT(t, src)
	}
	p, err := NewPlan(layers, xquery.MustParse(qSrc))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkStack verifies Plan.Eval against sequentially materializing every
// layer (the oracle) and returns the single-pass result and its stats.
func checkStack(t *testing.T, docXML, qSrc string, qtSrcs ...string) (*tree.Node, ViewStats) {
	t.Helper()
	doc := parseDoc(t, docXML)
	p := planOf(t, qSrc, qtSrcs...)
	got, vs, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalSequential(context.Background(), doc, core.MethodCopyUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Fatalf("stacked Eval disagrees with sequential oracle:\n stack: %v\n user: %s\n got  %s\n want %s",
			qtSrcs, qSrc, got, want)
	}
	return got, vs
}

func TestStackRenameThenNavigateNewLabel(t *testing.T) {
	// Layer 1 renames b to c; layer 2 deletes c/x — the second layer's
	// automaton must consume the *renamed* label.
	got, _ := checkStack(t, `<a><b><x>1</x><y>2</y></b></a>`,
		`for $u in /a/c return $u`,
		`transform copy $a := doc("d") modify do rename $a/a/b as c return $a`,
		`transform copy $a := doc("d") modify do delete $a/a/c/x return $a`)
	root := got.Root()
	if len(root.Children) != 1 || root.Children[0].Label != "c" {
		t.Fatalf("rename invisible through stack: %s", got)
	}
	if tree.CountLabel(root, "x") != 0 || tree.CountLabel(root, "y") != 1 {
		t.Errorf("second layer did not act on renamed view: %s", got)
	}
}

func TestStackInsertThenDeleteInserted(t *testing.T) {
	// Layer 1 inserts <flag/>; layer 2 deletes //flag: the stack is a
	// no-op on flags, and the user query must not see any.
	got, _ := checkStack(t, `<a><b/><b/></a>`,
		`for $u in /a/b return $u`,
		`transform copy $a := doc("d") modify do insert <flag/> into $a/a/b return $a`,
		`transform copy $a := doc("d") modify do delete $a//flag return $a`)
	if tree.CountLabel(got, "flag") != 0 {
		t.Errorf("flag survived insert-then-delete stack: %s", got)
	}
}

func TestStackInsertThenQualifierOnInserted(t *testing.T) {
	// Layer 2's qualifier tests a child that only exists in layer 1's
	// output.
	checkStack(t, `<a><b><v>1</v></b><b><v>2</v></b></a>`,
		`for $u in /a/b return $u`,
		`transform copy $a := doc("d") modify do insert <mark>hot</mark> into $a/a/b[v = "1"] return $a`,
		`transform copy $a := doc("d") modify do delete $a/a/b[mark = "hot"]/v return $a`)
}

func TestStackReplaceThenTransformReplacement(t *testing.T) {
	// Layer 1 replaces b with a constant element; layer 2 inserts into
	// the replacement's subtree — constant elements are first-class
	// nodes for the layers above.
	got, _ := checkStack(t, `<a><b><old/></b></a>`,
		`for $u in /a/nb return $u`,
		`transform copy $a := doc("d") modify do replace $a/a/b with <nb><inner/></nb> return $a`,
		`transform copy $a := doc("d") modify do insert <tag/> into $a/a/nb/inner return $a`)
	if tree.CountLabel(got, "tag") != 1 || tree.CountLabel(got, "old") != 0 {
		t.Errorf("layer 2 did not transform layer 1's constant element: %s", got)
	}
}

func TestStackInsertIntoInserted(t *testing.T) {
	// Layer 2 inserts into the element layer 1 inserted; navigation
	// descends through both constant elements.
	got, _ := checkStack(t, `<a><b/></a>`,
		`for $u in /a/b/e/tag return $u`,
		`transform copy $a := doc("d") modify do insert <e/> into $a/a/b return $a`,
		`transform copy $a := doc("d") modify do insert <tag>v</tag> into $a/a/b/e return $a`)
	root := got.Root()
	if len(root.Children) != 1 || root.Children[0].Value() != "v" {
		t.Fatalf("nested constant-element navigation failed: %s", got)
	}
}

func TestStackSameTransformTwice(t *testing.T) {
	// The same compiled query stacked twice: both inserted copies share
	// one *tree.Node, so virtual-node identity must tell the two
	// occurrences apart (distinct origins).
	doc := parseDoc(t, `<a><b/></a>`)
	qt := compileT(t, `transform copy $a := doc("d") modify do insert <e/> into $a/a/b return $a`)
	p, err := NewPlan([]*core.Compiled{qt, qt}, xquery.MustParse(`for $u in /a/b//e return $u`))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalSequential(context.Background(), doc, core.MethodCopyUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Fatalf("same-transform-twice stack:\n got  %s\n want %s", got, want)
	}
	if n := len(got.Root().Children); n != 2 {
		t.Fatalf("expected both inserted copies, got %d: %s", n, got)
	}
}

func TestStackThreeLayers(t *testing.T) {
	// Security view over virtual update over hypothetical state: insert
	// a marker, rename marked region, delete sensitive children of the
	// renamed region.
	checkStack(t, `<db><part><price>9</price><name>kb</name></part><part><name>m</name></part></db>`,
		`for $u in /db/audited return <row>{$u/name}{$u/price}{$u/note}</row>`,
		`transform copy $a := doc("d") modify do insert <note>checked</note> into $a/db/part[price] return $a`,
		`transform copy $a := doc("d") modify do rename $a/db/part[note = "checked"] as audited return $a`,
		`transform copy $a := doc("d") modify do delete $a/db/audited/price return $a`)
}

func TestStackWhereClauseAcrossLayers(t *testing.T) {
	// The where clause reads a value whose path exists only through the
	// combined effect of two layers.
	checkStack(t, `<a><p><q>5</q></p><p><q>50</q></p></a>`,
		`for $u in /a/p where $u/m/v = "yes" return $u/q`,
		`transform copy $a := doc("d") modify do insert <m><v>yes</v></m> into $a/a/p[q > 10] return $a`,
		`transform copy $a := doc("d") modify do delete $a/a/p/m[v = "no"] return $a`)
}

func TestStackDisjointMaterializesNothing(t *testing.T) {
	doc := parseDoc(t, site)
	p := planOf(t, `for $x in /site/people/person return $x`,
		`transform copy $a := doc("d") modify do delete $a/site/regions//item return $a`,
		`transform copy $a := doc("d") modify do rename $a/site/closed_auctions as archive return $a`)
	got, vs, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalSequential(context.Background(), doc, core.MethodCopyUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Fatalf("disjoint stack mismatch:\n got  %s\n want %s", got, want)
	}
	if vs.Materialized != 0 {
		t.Errorf("disjoint stack materialized %d nodes", vs.Materialized)
	}
	for i, ls := range vs.Layers {
		if ls.Materialized != 0 {
			t.Errorf("layer %d materialized %d nodes in a disjoint stack", i, ls.Materialized)
		}
	}
}

func TestStackPerLayerStats(t *testing.T) {
	doc := parseDoc(t, site)
	p := planOf(t, `for $x in /site/people/person return $x`,
		`transform copy $a := doc("d") modify do insert <watch/> into $a/site/people/person return $a`,
		`transform copy $a := doc("d") modify do delete $a/site/people/person/profile return $a`)
	_, vs, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Layers) != 2 {
		t.Fatalf("Layers = %d, want 2", len(vs.Layers))
	}
	for i, ls := range vs.Layers {
		if ls.NodesVisited == 0 {
			t.Errorf("layer %d visited no nodes", i)
		}
		if ls.Materialized == 0 {
			t.Errorf("layer %d materialized nothing despite rewriting returned subtrees", i)
		}
	}
	if vs.NodesVisited == 0 || vs.Materialized == 0 {
		t.Errorf("empty totals: %+v", vs.Stats)
	}
}

// TestStatsAreValueSnapshots guards the plan/run split: two sequential
// evaluations of one Plan must return independent stats, not accumulate
// state on the plan.
func TestStatsAreValueSnapshots(t *testing.T) {
	doc := parseDoc(t, site)
	p := planOf(t, `for $x in /site/people/person return $x`,
		`transform copy $a := doc("d") modify do insert <watch/> into $a/site/people/person return $a`)
	_, first, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := p.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if first.NodesVisited != second.NodesVisited || first.Materialized != second.Materialized {
		t.Errorf("stats accumulated across runs: first %+v second %+v", first.Stats, second.Stats)
	}
}

func TestPlanValidation(t *testing.T) {
	qt := compileT(t, `transform copy $a := doc("d") modify do delete $a/a return $a`)
	q := xquery.MustParse(`for $x in /a return $x`)
	if _, err := NewPlan(nil, q); err == nil {
		t.Errorf("empty stack accepted")
	}
	if _, err := NewPlan([]*core.Compiled{qt, nil}, q); err == nil {
		t.Errorf("nil layer accepted")
	}
	if _, err := NewPlan([]*core.Compiled{qt}, nil); err == nil {
		t.Errorf("nil user query accepted")
	}
	if _, err := NewPlan([]*core.Compiled{qt}, &xquery.UserQuery{}); err == nil {
		t.Errorf("invalid user query accepted")
	}
	p, err := NewPlan([]*core.Compiled{qt}, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLayers() != 1 || p.Layer(0) != qt || p.User() != q {
		t.Errorf("accessors disagree with construction")
	}
	if !strings.Contains(p.String(), "view(") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestPlanEvalPreCancelled(t *testing.T) {
	doc := parseDoc(t, `<a><b/></a>`)
	p := planOf(t, `for $x in /a/b return $x`,
		`transform copy $a := doc("d") modify do delete $a/a/b return $a`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.Eval(ctx, doc); err == nil {
		t.Errorf("pre-cancelled context accepted")
	}
	if _, err := p.EvalSequential(ctx, doc, core.MethodTopDown); err == nil {
		t.Errorf("pre-cancelled context accepted by EvalSequential")
	}
}

func TestSplitAttrTail(t *testing.T) {
	cases := []struct {
		path  string
		steps int
		attr  string
	}{
		{"a/b/@id", 2, "id"},
		{"@id", 0, "id"},
		{"a/b", 2, ""},
		{"a", 1, ""},
	}
	for _, tc := range cases {
		p := xpath.MustParse(tc.path)
		steps, attr := splitAttrTail(p)
		if len(steps) != tc.steps || attr != tc.attr {
			t.Errorf("splitAttrTail(%q) = (%d steps, %q), want (%d, %q)",
				tc.path, len(steps), attr, tc.steps, tc.attr)
		}
	}
	if steps, attr := splitAttrTail(nil); steps != nil || attr != "" {
		t.Errorf("splitAttrTail(nil) = (%v, %q)", steps, attr)
	}
}
