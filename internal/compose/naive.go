package compose

import (
	"context"
	"fmt"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xquery"
)

// NaiveComposition is the Naive Composition Method of §4: Qt and Q are
// evaluated sequentially —
//
//	let $d := Qt(T) let $d' := Q($d) return $d'
//
// The transform query is evaluated with the topDown method (GENTOP), the
// best-performing on-top-of-engine method in §7.1, matching the
// configuration the paper benchmarks Fig. 15 against.
//
// Deprecated: use Plan.EvalSequential, the same baseline generalized to
// transform stacks.
type NaiveComposition struct {
	Transform *core.Compiled
	User      *xquery.UserQuery
	// Method evaluates the transform step; defaults to MethodTopDown.
	Method core.Method
}

// NewNaive builds a naive composition.
func NewNaive(qt *core.Compiled, q *xquery.UserQuery) (*NaiveComposition, error) {
	if qt == nil || q == nil {
		return nil, xerr.New(xerr.Compile, "", "compose: nil input")
	}
	if err := q.Validate(); err != nil {
		return nil, xerr.Wrap(xerr.Compile, err)
	}
	return &NaiveComposition{Transform: qt, User: q, Method: core.MethodTopDown}, nil
}

// Eval materializes Qt(doc) and evaluates the user query over it.
func (n *NaiveComposition) Eval(doc *tree.Node) (*tree.Node, error) {
	return n.EvalContext(context.Background(), doc)
}

// EvalContext is Eval honouring ctx. The transform step aborts at node
// granularity; the user-query step is checked between the two phases.
func (n *NaiveComposition) EvalContext(ctx context.Context, doc *tree.Node) (*tree.Node, error) {
	mid, err := n.Transform.EvalContext(ctx, doc, n.Method)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	return n.User.Eval(mid)
}

// XQueryText renders the sequential composition in XQuery, as in
// Example 4.1.
func (n *NaiveComposition) XQueryText() string {
	return fmt.Sprintf("<result> {\nlet $n := %s\n%s\n} </result>",
		n.Transform.Query, userOverVar(n.User, "n"))
}

// userOverVar renders the user query with its for path anchored at $v
// instead of the document.
func userOverVar(q *xquery.UserQuery, v string) string {
	ps := q.Path.String()
	sep := "/"
	if len(ps) > 0 && ps[0] == '/' {
		sep = ""
	}
	s := fmt.Sprintf("for $%s in $%s%s%s", q.Var, v, sep, ps)
	if len(q.Conds) > 0 {
		s += " where "
		for i, c := range q.Conds {
			if i > 0 {
				s += " and "
			}
			s += c.String(q.Var)
		}
	}
	rendered := q.String()
	if idx := lastReturn(rendered); idx >= 0 {
		s += rendered[idx:]
	}
	return s
}

func lastReturn(s string) int {
	const kw = " return "
	for i := len(s) - len(kw); i >= 0; i-- {
		if s[i:i+len(kw)] == kw {
			return i
		}
	}
	return -1
}
