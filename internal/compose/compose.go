// Package compose implements §4 of Fan, Cong & Bohannon (SIGMOD 2007):
// composing a user query Q with a transform query Qt into a single query
// Qc with Qc(T) = Q(Qt(T)), evaluated in one pass over the input document
// without materializing Qt(T) — generalized here to *stacks* of transform
// queries, so a security view defined over a virtual update over a
// hypothetical state evaluates in the same single pass.
//
// The Compose Method treats the user query's path expressions as "words"
// fed to the selecting NFA Mp of each transform query: while Q navigates
// T, the evaluator carries one Mp state set per layer alongside every
// context node and applies each embedded update's effect exactly where Q
// looks —
//
//   - a node whose transition enters a layer's final state under a delete
//     is skipped (it does not exist in that layer's output; the
//     "if empty($y[q]) … else ()" conditional of example Q1c);
//   - under an insert, the constant element e appears as a virtual last
//     child of matched nodes and is navigated — and transformed by the
//     layers above — like any other child;
//   - under replace/rename the matched node is seen as the constant
//     element / under its new label, and the relabeled node is what the
//     next layer's automaton consumes;
//   - subtrees returned by the query are materialized on demand by one
//     walk that applies every remaining layer (the paper's embedded
//     topDown() user function), sharing everything no update can touch;
//   - as soon as every layer's state set dies (the user query navigates
//     where all updates are "disjoint", §4), the evaluator drops into
//     plain navigation with zero overhead.
//
// The entry point is Plan: an immutable composition plan whose Eval
// creates all per-run state afresh, so one Plan serves any number of
// goroutines. Composed and NaiveComposition predate the plan/run split
// and remain as deprecated single-layer wrappers.
//
// The paper presents this rewriting as XQuery source text; XQueryText
// renders that form for inspection, while Eval executes the identical
// plan directly. Both follow the same state discipline, so the measured
// behaviour (single pass, no copying, disjointness pruning) is the
// algorithm's.
package compose

import (
	"context"
	"fmt"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xquery"
)

// Composed is a single-layer composition Qc of a transform query and a
// user query.
//
// Deprecated: use Plan (NewPlan), which separates the immutable plan from
// per-run state, supports stacks of transform queries, and returns its
// statistics by value instead of recording them on the receiver. Composed
// remains a thin wrapper: Eval records LastStats on the receiver, so one
// Composed must not be evaluated from concurrent goroutines.
type Composed struct {
	Transform *core.Compiled
	User      *xquery.UserQuery
	// LastStats holds the totals of the last Eval call.
	LastStats Stats

	plan *Plan
}

// New builds the composition of qt and q.
//
// Deprecated: use NewPlan.
func New(qt *core.Compiled, q *xquery.UserQuery) (*Composed, error) {
	p, err := NewPlan([]*core.Compiled{qt}, q)
	if err != nil {
		return nil, err
	}
	return &Composed{Transform: qt, User: q, plan: p}, nil
}

// Eval evaluates the composition over doc, returning a document with the
// <result> root of the paper's examples.
func (c *Composed) Eval(doc *tree.Node) (*tree.Node, error) {
	return c.EvalContext(context.Background(), doc)
}

// EvalContext is Eval honouring cctx: cancellation aborts the navigation
// of the virtual document at node granularity.
func (c *Composed) EvalContext(cctx context.Context, doc *tree.Node) (*tree.Node, error) {
	out, vs, err := c.plan.Eval(cctx, doc)
	c.LastStats = vs.Stats
	return out, err
}

// String identifies the composition.
func (c *Composed) String() string {
	return fmt.Sprintf("compose(%s | %s)", c.Transform.Query, c.User)
}
