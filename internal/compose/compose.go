// Package compose implements §4 of Fan, Cong & Bohannon (SIGMOD 2007):
// composing a user query Q with a transform query Qt into a single query
// Qc with Qc(T) = Q(Qt(T)), evaluated in one pass over the input document
// without materializing Qt(T).
//
// The Compose Method treats the user query's path expressions as "words"
// fed to the selecting NFA Mp of the transform query: while Q navigates T,
// the evaluator carries the Mp state set alongside every context node and
// applies the embedded update's effect exactly where Q looks —
//
//   - a node whose transition enters Mp's final state under a delete is
//     skipped (it does not exist in Qt(T); the "if empty($y[q]) … else ()"
//     conditional of example Q1c);
//   - under an insert, the constant element e appears as a virtual last
//     child of matched nodes and is navigated like any other child;
//   - under replace/rename the matched node is seen as the constant
//     element / under its new label;
//   - subtrees returned by the query are materialized on demand with the
//     topDown procedure (the paper's embedded topDown() user function),
//     sharing everything the update cannot touch;
//   - as soon as the state set dies (the user query navigates where the
//     update is "disjoint", §4), the evaluator drops into plain navigation
//     with zero overhead.
//
// The paper presents this rewriting as XQuery source text; XQueryText
// renders that form for inspection, while Eval executes the identical
// plan directly. Both follow the same state discipline, so the measured
// behaviour (single pass, no copying, disjointness pruning) is the
// algorithm's.
package compose

import (
	"context"
	"fmt"

	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// Composed is a composition Qc of a transform query and a user query.
// Eval records per-run statistics on the receiver, so one Composed must
// not be evaluated from concurrent goroutines; build one per goroutine
// (construction is cheap — the compiled transform is shared).
type Composed struct {
	Transform *core.Compiled
	User      *xquery.UserQuery
	// Stats of the last Eval call.
	LastStats Stats

	// can is the in-flight evaluation's cancellation poll; nil outside
	// EvalContext and for non-cancellable contexts.
	can *core.Canceler
}

// Stats counts work done by one evaluation, to substantiate the "accesses
// only the relevant part of the document" claim.
type Stats struct {
	NodesVisited int // virtual nodes enumerated during navigation
	Materialized int // nodes materialized by the embedded topDown
}

// New builds the composition of qt and q.
func New(qt *core.Compiled, q *xquery.UserQuery) (*Composed, error) {
	if qt == nil || q == nil {
		return nil, xerr.New(xerr.Compile, "", "compose: nil input")
	}
	if err := q.Validate(); err != nil {
		return nil, xerr.Wrap(xerr.Compile, err)
	}
	return &Composed{Transform: qt, User: q}, nil
}

// ctx is a context node of the virtual document Qt(T): a real node of T
// together with the Mp state set that reached it, or a node inside the
// update's constant element (plain = true, no update applies below).
type ctx struct {
	n      *tree.Node
	label  string             // effective label (differs under rename)
	states automaton.StateSet // nil/empty ⇒ no update can apply below
	plain  bool               // node belongs to the constant element e
	site   *tree.Node         // for plain nodes: the real node e hangs off
}

func (c ctx) dead() bool { return c.plain || c.states == nil || c.states.Empty() }

// Eval evaluates the composition over doc, returning a document with the
// <result> root of the paper's examples.
func (c *Composed) Eval(doc *tree.Node) (*tree.Node, error) {
	return c.EvalContext(context.Background(), doc)
}

// EvalContext is Eval honouring cctx: cancellation aborts the navigation
// of the virtual document at node granularity.
func (c *Composed) EvalContext(cctx context.Context, doc *tree.Node) (*tree.Node, error) {
	// Navigation polls cancellation every few hundred nodes, which a
	// small document may never reach; check up front so an
	// already-cancelled context fails deterministically.
	if cctx != nil && cctx.Err() != nil {
		return nil, xerr.Wrap(xerr.Eval, cctx.Err())
	}
	c.LastStats = Stats{}
	c.can = core.NewCanceler(cctx)
	defer func() { c.can = nil }()
	root := ctx{n: doc, states: c.Transform.NFA.InitialSet()}
	result := tree.NewElement("result")
	for _, x := range c.selectPath(root, c.User.Path) {
		if !c.condsHold(x) {
			continue
		}
		result.Children = append(result.Children, c.instantiate(c.User.Return, x)...)
	}
	if err := c.can.Err(); err != nil {
		return nil, err
	}
	return tree.NewDocument(result), nil
}

// selectPath navigates a path through the virtual document. A '//' step
// immediately followed by a named step is fused into a single walk, so the
// frontier of all descendants is never materialized.
func (c *Composed) selectPath(from ctx, p *xpath.Path) []ctx {
	frontier := []ctx{from}
	for i := 0; i < len(p.Steps); i++ {
		if len(frontier) == 0 {
			return nil
		}
		s := p.Steps[i]
		if s.Axis == xpath.DescendantOrSelf && len(s.Quals) == 0 &&
			i+1 < len(p.Steps) && p.Steps[i+1].Axis == xpath.Child {
			frontier = c.applyDescChild(frontier, p.Steps[i+1])
			i++
			continue
		}
		frontier = c.applyStep(frontier, s)
	}
	return frontier
}

// applyDescChild evaluates the fused step '//l[q]': all matching children
// of the frontier's self-or-descendant nodes, in one walk.
func (c *Composed) applyDescChild(frontier []ctx, s xpath.Step) []ctx {
	var out []ctx
	seen := make(map[ctxKey]struct{})
	var visit func(x ctx)
	visit = func(x ctx) {
		c.eachChild(x, func(ch ctx) {
			if (s.Wildcard || ch.label == s.Label) && c.qualsHold(ch, s.Quals) {
				k := ctxKey{n: ch.n, site: ch.site}
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, ch)
				}
			}
			visit(ch)
		})
	}
	for _, f := range frontier {
		visit(f)
	}
	return out
}

type ctxKey struct {
	n    *tree.Node
	site *tree.Node
}

func (c *Composed) applyStep(frontier []ctx, s xpath.Step) []ctx {
	var out []ctx
	switch s.Axis {
	case xpath.Child:
		// A node has one parent, so distinct frontier entries yield
		// distinct children: no deduplication needed.
		for _, f := range frontier {
			c.eachChild(f, func(ch ctx) {
				if !s.Wildcard && ch.label != s.Label {
					return
				}
				if c.qualsHold(ch, s.Quals) {
					out = append(out, ch)
				}
			})
		}
	case xpath.DescendantOrSelf:
		// The frontier may contain a node and its own descendant, so
		// the expansion deduplicates by (node, insertion site).
		seen := make(map[ctxKey]struct{})
		var visit func(x ctx)
		visit = func(x ctx) {
			if c.qualsHold(x, s.Quals) {
				k := ctxKey{n: x.n, site: x.site}
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, x)
				}
			}
			c.eachChild(x, visit)
		}
		for _, f := range frontier {
			visit(f)
		}
	case xpath.Self:
		for _, f := range frontier {
			if c.qualsHold(f, s.Quals) {
				out = append(out, f)
			}
		}
	case xpath.Attribute:
		// Attribute steps are handled by the operand/qualifier
		// evaluators, never on navigation paths.
	}
	return out
}

// eachChild enumerates the element children of a context node in the
// virtual document Qt(T): deleted children disappear, replaced children
// become the constant element, renamed children change label, and an
// insert-matched node grows the constant element as its last child.
func (c *Composed) eachChild(f ctx, fn func(ctx)) {
	if c.can.Stopped() {
		return
	}
	u := &c.Transform.Query.Update
	m := c.Transform.NFA
	dead := f.dead()
	for _, ch := range f.n.Children {
		if ch.Kind != tree.Element {
			continue
		}
		c.LastStats.NodesVisited++
		if dead {
			// Disjoint region: plain navigation, no update below.
			fn(ctx{n: ch, label: ch.Label, plain: f.plain, site: f.site})
			continue
		}
		st := m.StepDirect(f.states, ch)
		if m.Matches(st) {
			switch u.Op {
			case core.Delete:
				continue
			case core.Replace:
				fn(ctx{n: u.Elem, label: u.Elem.Label, plain: true, site: ch})
				continue
			case core.Rename:
				fn(ctx{n: ch, label: u.Label, states: st})
				continue
			}
			// Insert: e appears when ch's own children are listed.
		}
		fn(ctx{n: ch, label: ch.Label, states: st})
	}
	// An insert-matched context grows e as its last child.
	if !dead && u.Op == core.Insert && m.Matches(f.states) {
		c.LastStats.NodesVisited++
		fn(ctx{n: u.Elem, label: u.Elem.Label, plain: true, site: f.n})
	}
}

// qualsHold evaluates the user query's step qualifiers against the virtual
// document.
func (c *Composed) qualsHold(x ctx, quals []xpath.Qual) bool {
	for _, q := range quals {
		if !c.evalQual(x, q) {
			return false
		}
	}
	return true
}

func (c *Composed) evalQual(x ctx, q xpath.Qual) bool {
	if x.dead() {
		// The update cannot reach below x (disjoint region or
		// constant-element subtree), so plain evaluation is exact —
		// and much cheaper than the update-aware machinery.
		return xpath.EvalQual(x.n, q)
	}
	switch q := q.(type) {
	case *xpath.TrueQual:
		return true
	case *xpath.LabelQual:
		return x.n.Kind == tree.Element && x.label == q.Label
	case *xpath.AndQual:
		return c.evalQual(x, q.L) && c.evalQual(x, q.R)
	case *xpath.OrQual:
		return c.evalQual(x, q.L) || c.evalQual(x, q.R)
	case *xpath.NotQual:
		return !c.evalQual(x, q.X)
	case *xpath.PathQual:
		return c.pathTest(x, q.Path, xpath.OpNone, "")
	case *xpath.CmpQual:
		return c.pathTest(x, q.Path, q.Op, q.Lit)
	default:
		return false
	}
}

// pathTest mirrors xpath's qualifier path evaluation over the virtual
// document. Node values and attributes are unaffected by the update kinds
// of §2 (they add, remove or relabel element nodes), so only navigation is
// update-aware.
func (c *Composed) pathTest(x ctx, p *xpath.Path, op xpath.CmpOp, lit string) bool {
	steps := p.Steps
	var attr string
	if k := len(steps); k > 0 && steps[k-1].Axis == xpath.Attribute {
		attr = steps[k-1].Label
		steps = steps[:k-1]
	}
	for _, m := range c.selectPath(x, &xpath.Path{Steps: steps}) {
		if attr != "" {
			v, ok := m.n.Attr(attr)
			if !ok {
				continue
			}
			if op == xpath.OpNone || xpath.Compare(v, op, lit) {
				return true
			}
			continue
		}
		if op == xpath.OpNone || xpath.Compare(m.n.Value(), op, lit) {
			return true
		}
	}
	return false
}

func (c *Composed) condsHold(x ctx) bool {
	for _, cond := range c.User.Conds {
		if !c.condHolds(x, cond) {
			return false
		}
	}
	return true
}

func (c *Composed) condHolds(x ctx, cond xquery.Cond) bool {
	for _, l := range c.operandValues(x, cond.L) {
		for _, r := range c.operandValues(x, cond.R) {
			if xpath.Compare(l, cond.Op, r) {
				return true
			}
		}
	}
	return false
}

func (c *Composed) operandValues(x ctx, o xquery.Operand) []string {
	if o.IsConst {
		return []string{o.Const}
	}
	if o.Path == nil || len(o.Path.Steps) == 0 {
		return []string{x.n.Value()}
	}
	if x.dead() {
		return xquery.Operand{Path: o.Path}.Values(x.n)
	}
	steps := o.Path.Steps
	var attr string
	if k := len(steps); steps[k-1].Axis == xpath.Attribute {
		attr = steps[k-1].Label
		steps = steps[:k-1]
	}
	var out []string
	for _, m := range c.selectPath(x, &xpath.Path{Steps: steps}) {
		if attr != "" {
			if v, ok := m.n.Attr(attr); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, m.n.Value())
	}
	return out
}

// instantiate builds the return template for one binding, materializing
// hole subtrees with the embedded topDown (§4, "The value to be
// returned").
func (c *Composed) instantiate(it xquery.Item, x ctx) []*tree.Node {
	switch it := it.(type) {
	case *xquery.TextItem:
		return []*tree.Node{tree.NewText(it.Data)}
	case *xquery.Hole:
		return c.holeNodes(it.Operand, x)
	case *xquery.ElemTemplate:
		e := tree.NewElement(it.Label)
		for _, child := range it.Items {
			e.Children = append(e.Children, c.instantiate(child, x)...)
		}
		return []*tree.Node{e}
	default:
		return nil
	}
}

func (c *Composed) holeNodes(o xquery.Operand, x ctx) []*tree.Node {
	if o.IsConst {
		return []*tree.Node{tree.NewText(o.Const)}
	}
	targets := []ctx{x}
	if o.Path != nil && len(o.Path.Steps) > 0 {
		steps := o.Path.Steps
		if steps[len(steps)-1].Axis == xpath.Attribute {
			var out []*tree.Node
			for _, v := range c.operandValues(x, o) {
				out = append(out, tree.NewText(v))
			}
			return out
		}
		targets = c.selectPath(x, o.Path)
	}
	var out []*tree.Node
	for _, t := range targets {
		out = append(out, c.materialize(t)...)
	}
	return out
}

// materialize turns a virtual context node into real tree nodes as they
// appear in Qt(T). Nodes the update cannot touch are shared with T.
func (c *Composed) materialize(x ctx) []*tree.Node {
	if x.plain {
		// Constant-element subtree: fresh copy per occurrence, like an
		// XQuery element constructor.
		return []*tree.Node{x.n.DeepCopy()}
	}
	if x.dead() {
		return []*tree.Node{x.n}
	}
	c.LastStats.Materialized += x.n.Size()
	return core.ProcessEntered(c.Transform, x.n, x.states, core.DirectChecker{}, c.can)
}

// String identifies the composition.
func (c *Composed) String() string {
	return fmt.Sprintf("compose(%s | %s)", c.Transform.Query, c.User)
}
