package compose

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// Stack is the incremental-maintenance evaluator of a transform stack:
// a fused top-down pass that applies every layer during one traversal
// of the source document and memoizes, per visited element, the state
// of all layer automata together with the node's image in the final
// view. The memo is what makes delta maintenance possible: after a
// commit, subtrees the update provably did not touch can reuse their
// memoized images without being traversed again (EvalDelta).
//
// Stacks are restricted to qualifier-free layers. Qualifiers make a
// node's fate depend on content outside its root path, which breaks
// the "same subtree + same automaton states ⇒ same image" rule the
// memo relies on; NewStack rejects them and callers fall back to full
// recomposition (Plan.Materialize).
//
// A Stack is immutable and safe for concurrent use; all evaluation
// state lives in per-call values.
type Stack struct {
	layers []*core.Compiled
	// empty holds one canonical empty state set per layer: the vector
	// entries for layers that can no longer match (and for layers
	// already applied when descending into a constant element).
	empty []automaton.StateSet
}

// NewStack builds the fused evaluator for a transform stack. It fails
// with a Compile error when the stack is empty or any layer's
// selection path carries qualifiers.
func NewStack(layers []*core.Compiled) (*Stack, error) {
	if len(layers) == 0 {
		return nil, xerr.New(xerr.Compile, "", "compose: view stack is empty")
	}
	s := &Stack{
		layers: append([]*core.Compiled(nil), layers...),
		empty:  make([]automaton.StateSet, len(layers)),
	}
	for i, l := range layers {
		if l == nil {
			return nil, xerr.New(xerr.Compile, "", "compose: nil transform at layer %d", i)
		}
		if l.NFA.HasQualifiers() {
			return nil, xerr.New(xerr.Compile, "",
				"compose: layer %d has qualifiers; delta maintenance needs qualifier-free paths", i)
		}
		s.empty[i] = l.NFA.NewSet()
	}
	return s, nil
}

// NumLayers returns the number of transform layers.
func (s *Stack) NumLayers() int { return len(s.layers) }

// Layer returns the compiled transform of layer i. Treat it as
// read-only.
func (s *Stack) Layer(i int) *core.Compiled { return s.layers[i] }

// Memo is the per-evaluation memo of a Stack run: for every element
// the traversal visited, the per-layer automaton state vector in force
// when the element was entered and the element's image in the view
// (nil when some layer deleted it). Entries are keyed by the source
// document's node pointers, so a Memo is only meaningful against the
// exact tree it was computed over — the store's snapshot-adoption
// bridge (see store.CommitEvent.Bridge) is what carries keys from one
// version to the next.
type Memo struct {
	m map[*tree.Node]*memoEntry
}

type memoEntry struct {
	states []automaton.StateSet // per-layer sets entered at the node
	image  *tree.Node           // image in the final view; nil = deleted
}

// Len reports the number of memoized elements.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	return len(m.m)
}

// stackRun is the per-evaluation state of a Stack traversal.
type stackRun struct {
	s    *Stack
	can  *core.Canceler
	memo *Memo // being built
	old  *Memo // previous version's memo (delta runs only)
	// bad is set when the delta walk finds newDoc and bridge out of
	// shape — a defensive bail-out; the caller falls back to a full
	// recomposition.
	bad   bool
	stats ViewStats
	// reused counts memo hits (subtrees spliced without traversal).
	reused int
}

// Eval evaluates the stack over doc — a document node — and returns
// the final view, the memo of the run and its statistics. The result
// is byte-identical to Plan.Materialize over the same stack; unchanged
// subtrees are shared with doc by pointer, and constant elements of
// the layers may be aliased rather than copied, so the result must be
// treated as strictly immutable (serve it, never index or mutate it).
func (s *Stack) Eval(ctx context.Context, doc *tree.Node) (*tree.Node, *Memo, ViewStats, error) {
	return s.run(ctx, doc, nil, nil)
}

// EvalDelta re-evaluates the stack over newDoc after a commit,
// reusing oldMemo — the memo of the previous version's evaluation —
// wherever the commit provably left a subtree untouched. bridge is the
// update evaluator's output before snapshot adoption: it has exactly
// newDoc's shape, but its unchanged subtrees are the previous
// snapshot's node pointers, which is what connects newDoc's nodes to
// oldMemo's keys. ok is false when the walk could not align the trees
// (the caller should fall back to Eval); the other results are then
// meaningless.
func (s *Stack) EvalDelta(ctx context.Context, newDoc, bridge *tree.Node, oldMemo *Memo) (*tree.Node, *Memo, ViewStats, bool, error) {
	if bridge == nil || oldMemo == nil {
		return nil, nil, ViewStats{}, false, nil
	}
	view, memo, stats, err := s.run(ctx, newDoc, bridge, oldMemo)
	if err != nil {
		return nil, nil, stats, false, err
	}
	if view == nil { // bad shape
		return nil, nil, stats, false, nil
	}
	return view, memo, stats, true, nil
}

func (s *Stack) run(ctx context.Context, doc, bridge *tree.Node, oldMemo *Memo) (*tree.Node, *Memo, ViewStats, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, nil, ViewStats{}, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	r := &stackRun{
		s:    s,
		can:  core.NewCanceler(ctx),
		memo: &Memo{m: make(map[*tree.Node]*memoEntry)},
		old:  oldMemo,
	}
	r.stats.Layers = make([]Stats, len(s.layers))
	init := make([]automaton.StateSet, len(s.layers))
	for i, l := range s.layers {
		init[i] = l.NFA.InitialSet()
	}
	if bridge != nil && (bridge.Kind != doc.Kind || len(bridge.Children) != len(doc.Children)) {
		return nil, nil, r.stats, nil
	}
	result := tree.NewDocument(nil)
	changed := false
	for i, ch := range doc.Children {
		if ch.Kind != tree.Element {
			result.Children = append(result.Children, ch)
			continue
		}
		var bch *tree.Node
		if bridge != nil {
			bch = bridge.Children[i]
		}
		out := r.eval(ch, bch, init, true)
		if r.bad {
			return nil, nil, r.stats, nil
		}
		if out == nil {
			changed = true
			continue
		}
		if out != ch {
			changed = true
		}
		result.Children = append(result.Children, out)
	}
	if err := r.can.Err(); err != nil {
		return nil, nil, r.stats, err
	}
	if !changed {
		result = doc // identity: share the document node like topDown
	}
	r.stats.ReusedSubtrees = r.reused
	return result, r.memo, r.stats, nil
}

// eval applies layers to element n, whose label has not been consumed
// yet; states is the per-layer state vector in force at n (the sets
// entered at n's parent). b is n's counterpart in the bridge tree (nil
// outside delta runs and inside constants), memoize records the node
// in the run's memo (false inside constant elements, whose nodes are
// shared across evaluations and never looked up again). It returns
// n's image in the final view, nil when a layer deletes it.
func (r *stackRun) eval(n, b *tree.Node, states []automaton.StateSet, memoize bool) *tree.Node {
	if r.bad || r.can.Stopped() {
		return n
	}
	dead := true
	for _, s := range states {
		if !s.Empty() {
			dead = false
			break
		}
	}
	if dead {
		// No layer can match at or below n: the subtree passes through
		// the whole stack unchanged.
		if memoize {
			r.memo.m[n] = &memoEntry{states: states, image: n}
		}
		return n
	}
	if b != nil {
		if e := r.old.m[b]; e != nil && statesEqual(e.states, states) {
			// b is in the old memo, so it is a node of the previous
			// snapshot that the update returned unchanged — n's subtree
			// is byte-identical to the one e.image was computed over,
			// and the automata arrive in the same states: splice the
			// old image without descending.
			r.reused++
			if memoize {
				r.memo.m[n] = &memoEntry{states: states, image: e.image}
			}
			return e.image
		}
	}
	r.stats.NodesVisited++

	layers := r.s.layers
	entered := make([]automaton.StateSet, len(layers))
	label := n.Label
	renamed := false
	var pending []int // layers that matched n with Insert, in order
	for i, l := range layers {
		in := states[i]
		if in.Empty() {
			entered[i] = in
			continue
		}
		r.stats.Layers[i].NodesVisited++
		out := l.NFA.Step(in, label, nil)
		entered[i] = out
		if !l.NFA.Matches(out) {
			continue
		}
		u := &l.Query.Update
		switch u.Op {
		case core.Delete:
			if memoize {
				r.memo.m[n] = &memoEntry{states: states, image: nil}
			}
			return nil
		case core.Replace:
			// The constant takes n's place, so the remaining layers
			// step into it from their pre-n states.
			img := r.evalConst(u.Elem, i, states)
			if memoize {
				r.memo.m[n] = &memoEntry{states: states, image: img}
			}
			return img
		case core.Rename:
			label = u.Label
			renamed = true
		case core.Insert:
			pending = append(pending, i)
		}
	}

	var newChildren []*tree.Node
	changed := false
	for i, ch := range n.Children {
		if ch.Kind != tree.Element {
			if changed {
				newChildren = append(newChildren, ch)
			}
			continue
		}
		var bch *tree.Node
		if b != nil {
			if i >= len(b.Children) || b.Children[i].Kind != tree.Element {
				r.bad = true
				return n
			}
			bch = b.Children[i]
		}
		out := r.eval(ch, bch, entered, memoize)
		if r.bad {
			return n
		}
		if !changed && out != ch {
			changed = true
			newChildren = make([]*tree.Node, 0, len(n.Children)+len(pending))
			newChildren = append(newChildren, n.Children[:i]...)
		}
		if changed && out != nil {
			newChildren = append(newChildren, out)
		}
	}
	for _, i := range pending {
		// The inserted constant is a child of n in layer i's output,
		// entered by the later layers from their post-n states.
		img := r.evalConst(layers[i].Query.Update.Elem, i, entered)
		if img == nil {
			continue // a later layer deleted the inserted element
		}
		if !changed {
			changed = true
			newChildren = make([]*tree.Node, 0, len(n.Children)+len(pending))
			newChildren = append(newChildren, n.Children...)
		}
		newChildren = append(newChildren, img)
	}

	if !changed && !renamed {
		if memoize {
			r.memo.m[n] = &memoEntry{states: states, image: n}
		}
		return n
	}
	if !changed {
		// Relabel only: private child slice, as in topDown.
		newChildren = append([]*tree.Node(nil), n.Children...)
	}
	out := &tree.Node{Kind: tree.Element, Sym: n.Sym, Label: label, Attrs: n.Attrs, Children: newChildren}
	if renamed {
		out.Sym = tree.NoSym
	}
	r.stats.Materialized++
	if memoize {
		r.memo.m[n] = &memoEntry{states: states, image: out}
	}
	return out
}

// evalConst evaluates the constant element of layer owner through the
// layers after it: the vector restricts states to layers > owner
// (earlier layers never see their own or earlier constants). Constant
// subtrees that no later layer can touch are aliased, not copied —
// view results are immutable and only ever serialized, so sharing the
// compiled query's constant is safe.
func (r *stackRun) evalConst(c *tree.Node, owner int, states []automaton.StateSet) *tree.Node {
	restricted := make([]automaton.StateSet, len(states))
	for j := range states {
		if j <= owner {
			restricted[j] = r.s.empty[j]
		} else {
			restricted[j] = states[j]
		}
	}
	img := r.eval(c, nil, restricted, false)
	if img != nil {
		r.stats.Layers[owner].Materialized += img.Size()
	}
	return img
}

func statesEqual(a, b []automaton.StateSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
