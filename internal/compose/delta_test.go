package compose

import (
	"context"
	"math/rand"
	"testing"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xmark"
	"xtq/internal/xpath"
)

// qualFreeConfig is the XMark vocabulary without qualifiers or
// attribute steps — the fragment the Stack evaluator accepts.
func qualFreeConfig() xpath.GenConfig {
	cfg := xmarkGenConfig()
	cfg.Attrs = nil
	cfg.MaxQual = 0
	return cfg
}

// randomStack draws a qualifier-free stack of the given depth.
func randomStack(t *testing.T, rng *rand.Rand, cfg xpath.GenConfig, depth int) (*Stack, []*core.Compiled) {
	t.Helper()
	layers := make([]*core.Compiled, 0, depth)
	for len(layers) < depth {
		c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
		if err != nil {
			continue
		}
		layers = append(layers, c)
	}
	s, err := NewStack(layers)
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	return s, layers
}

// materializeOracle applies the stack sequentially with the
// copy-and-update baseline — the reference the fused evaluator and the
// delta path are measured against.
func materializeOracle(t *testing.T, layers []*core.Compiled, doc *tree.Node) *tree.Node {
	t.Helper()
	cur := doc
	for _, l := range layers {
		var err error
		cur, err = l.EvalContext(context.Background(), cur, core.MethodCopyUpdate)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
	}
	return cur
}

// Property: the fused Stack evaluator agrees with sequential
// materialization on random XMark documents and qualifier-free stacks.
func TestQuickStackEvalMatchesOracle(t *testing.T) {
	cfg := qualFreeConfig()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		doc, err := xmark.Generate(xmark.Config{
			Factor: 0.0005 + rng.Float64()*0.002,
			Seed:   rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, layers := randomStack(t, rng, cfg, 1+rng.Intn(3))
		got, memo, _, err := s.Eval(context.Background(), doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := materializeOracle(t, layers, doc)
		if !tree.Equal(got, want) {
			var stack []string
			for _, l := range layers {
				stack = append(stack, l.Query.Update.String("$a"))
			}
			t.Fatalf("seed %d: stack mismatch\n stack: %v\n got  %s\n want %s", seed, stack, got, want)
		}
		if memo.Len() == 0 {
			t.Fatalf("seed %d: empty memo", seed)
		}
	}
}

// Property: delta re-evaluation through the snapshot-adoption bridge is
// byte-identical to full recomposition at every version of a random
// update sequence, exactly as the store produces them (topDown output
// adopted via Freeze).
func TestQuickStackEvalDeltaMatchesOracle(t *testing.T) {
	cfg := qualFreeConfig()
	totalReused := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		gen, err := xmark.Generate(xmark.Config{
			Factor: 0.0005 + rng.Float64()*0.002,
			Seed:   rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		cur, curIx, _ := tree.Freeze(gen, nil)
		s, layers := randomStack(t, rng, cfg, 1+rng.Intn(3))
		_, memo, _, err := s.Eval(context.Background(), cur)
		if err != nil {
			t.Fatalf("seed %d: initial eval: %v", seed, err)
		}
		for step := 0; step < 6; step++ {
			var upd *core.Compiled
			for upd == nil {
				c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
				if err == nil {
					upd = c
				}
			}
			// The commit pipeline: evaluate copy-on-write, then adopt.
			bridge, err := upd.EvalContext(context.Background(), cur, core.MethodTopDown)
			if err != nil {
				t.Fatalf("seed %d step %d: update: %v", seed, step, err)
			}
			next, nextIx, _ := tree.Freeze(bridge, curIx)
			got, nextMemo, stats, ok, err := s.EvalDelta(context.Background(), next, bridge, memo)
			if err != nil {
				t.Fatalf("seed %d step %d: delta: %v", seed, step, err)
			}
			if !ok {
				t.Fatalf("seed %d step %d: delta bailed on store-shaped input", seed, step)
			}
			want := materializeOracle(t, layers, next)
			if !tree.Equal(got, want) {
				var stack []string
				for _, l := range layers {
					stack = append(stack, l.Query.Update.String("$a"))
				}
				t.Fatalf("seed %d step %d: delta mismatch\n stack: %v\n update: %s\n got  %s\n want %s",
					seed, step, stack, upd.Query.Update.String("$a"), got, want)
			}
			totalReused += stats.ReusedSubtrees
			cur, curIx, memo = next, nextIx, nextMemo
		}
	}
	if totalReused == 0 {
		t.Error("delta path never reused a memoized subtree across the whole property run")
	}
}

func TestNewStackRejectsQualifiers(t *testing.T) {
	c, err := core.MustParseQuery(
		`transform copy $a := doc("T") modify do delete $a/site/people/person[age = "1"] return $a`).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStack([]*core.Compiled{c}); err == nil {
		t.Error("NewStack accepted a qualified layer")
	}
	if _, err := NewStack(nil); err == nil {
		t.Error("NewStack accepted an empty stack")
	}
}

func TestStackDeltaFallsBackOnBadBridge(t *testing.T) {
	doc := tree.NewDocument(tree.NewElement("site", tree.NewElement("item")))
	cur, _, _ := tree.Freeze(doc, nil)
	c, err := core.MustParseQuery(
		`transform copy $a := doc("T") modify do delete $a//item return $a`).Compile()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStack([]*core.Compiled{c})
	if err != nil {
		t.Fatal(err)
	}
	_, memo, _, err := s.Eval(context.Background(), cur)
	if err != nil {
		t.Fatal(err)
	}
	// A bridge of the wrong shape must bail out, not corrupt the result.
	bogus := tree.NewDocument(tree.NewElement("site"))
	other := tree.NewDocument(tree.NewElement("site", tree.NewElement("x"), tree.NewElement("y")))
	if _, _, _, ok, _ := s.EvalDelta(context.Background(), other, bogus, memo); ok {
		t.Error("EvalDelta accepted a bridge of mismatched shape")
	}
	if _, _, _, ok, _ := s.EvalDelta(context.Background(), other, nil, memo); ok {
		t.Error("EvalDelta accepted a nil bridge")
	}
}
