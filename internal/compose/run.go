package compose

import (
	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// stateSet abbreviates the automaton's bit set in the signatures below.
type stateSet = automaton.StateSet

// This file evaluates a Plan: it navigates the *stacked virtual document*
// View_k = t_{k-1}(…t_0(T)…) without materializing any View_i. The
// single-layer state discipline of §4 — carry the selecting-NFA state set
// alongside every context node, apply the update's effect exactly where
// the user query looks — is threaded through the stack: a virtual node
// carries one state set per layer, and enumerating its children at level
// L recursively enumerates them at level L-1 and applies transform L-1 to
// the result. Renames feed the relabeled node to the next layer's
// automaton, constant elements inserted by layer i are navigated (and
// further transformed) by layers above i, and as soon as every layer's
// state set dies the evaluator drops into plain navigation.
//
// Representation: the run binds every layer's NFA to the source
// document's symbol table (automaton.Binding), so stepping compares dense
// symbol ids; labels the document has never seen — rename targets and
// constant-element labels — carry NoSym and match through the binding's
// string fallback. Every virtual node has an ordinal: real document nodes
// use their preorder ordinal from the document index, nodes of constant
// elements draw fresh ordinals from a per-run arena. Ordinals make
// identity checks (descendant-axis deduplication, constant-element
// anchors) dense bitset operations instead of map lookups.

// vnode is a context node of the stacked virtual document.
//
// Level discipline: a vnode is always produced "at" some level L — it
// denotes a node of View_L. Its label is the effective label in View_L
// (after any renames by layers below L) and states[i] is populated
// exactly for the layers i ∈ [origin, L) that act below it at that level;
// entries at or above L stay nil. deadAll (every entry nil or empty) is
// therefore level-independent: it means no layer the vnode has been
// exposed to can touch its subtree.
type vnode struct {
	n     *tree.Node
	label string
	// sym is the label's symbol in the source document's table, or NoSym
	// for labels the document does not know (renames, constant
	// elements), which the bindings match by string instead.
	sym tree.SymID
	// origin is the first view index where n exists: 0 for document
	// nodes, i+1 for nodes of layer i's constant element.
	origin int
	// anchor identifies the attachment instance for constant-element
	// nodes (constant elements share one *tree.Node across all the
	// places they appear; the anchor tells the occurrences apart). It is
	// the virtual ordinal of the attachment point, and 0 for document
	// nodes. (n, origin, anchor) is the identity of the virtual node.
	anchor int32
	// states[i] is the state set of layer i's NFA that reached this node
	// in View_i; nil means layer i cannot touch the subtree. A nil slice
	// means every layer is dead — the plain-navigation fast path.
	states []stateSet
}

// vkey is the identity of a virtual node, used to intern arena ordinals
// for constant-element occurrences.
type vkey struct {
	n      *tree.Node
	origin int
	anchor int32
}

func (x vnode) key() vkey { return vkey{n: x.n, origin: x.origin, anchor: x.anchor} }

// deadAll reports whether no transform layer can touch x's subtree; below
// such a node the evaluator navigates the real tree directly (§4's
// disjointness pruning, per layer).
func (x vnode) deadAll() bool {
	for _, s := range x.states {
		if s != nil && !s.Empty() {
			return false
		}
	}
	return true
}

// bitset is a growable bit set over virtual ordinals.
type bitset []uint64

func (b *bitset) add(ord int32) bool {
	w, bit := int(ord)/64, uint(ord)%64
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	if (*b)[w]&(1<<bit) != 0 {
		return false
	}
	(*b)[w] |= 1 << bit
	return true
}

// run is the per-evaluation state of a Plan: statistics, the cancellation
// poll, the per-layer symbol bindings and the virtual-ordinal arena that
// gives constant-element occurrences stable dense identities within the
// evaluation. A fresh run per Eval call is what makes Plan (and the
// facade's PreparedView) goroutine-safe — nothing of a run ever hangs off
// the Plan.
type run struct {
	plan  *Plan
	can   *core.Canceler
	stats ViewStats
	idx   *tree.Index
	binds []*automaton.Binding
	// renameSyms[i] is the doc-table symbol of layer i's rename target
	// (NoSym when absent from the document or layer i is not a rename).
	renameSyms []tree.SymID
	// nextVOrd is the next free virtual ordinal; real nodes own
	// [0, idx.NumNodes).
	nextVOrd int32
	vords    map[vkey]int32
	// bsPool recycles dedup bitsets across (possibly nested) descendant
	// expansions.
	bsPool []bitset
}

func newRun(p *Plan, can *core.Canceler, doc *tree.Node) *run {
	idx := tree.EnsureIndex(doc)
	r := &run{
		plan:       p,
		can:        can,
		stats:      ViewStats{Layers: make([]Stats, len(p.layers))},
		idx:        idx,
		binds:      make([]*automaton.Binding, len(p.layers)),
		renameSyms: make([]tree.SymID, len(p.layers)),
		nextVOrd:   int32(idx.NumNodes),
	}
	for i, l := range p.layers {
		r.binds[i] = l.NFA.Bind(idx.Syms)
		if l.Query.Update.Op == core.Rename {
			r.renameSyms[i] = idx.Syms.Lookup(l.Query.Update.Label)
		}
	}
	return r
}

// ordOf returns x's virtual ordinal: the preorder ordinal for real
// document nodes, an interned arena ordinal (≥ NumNodes) otherwise.
func (r *run) ordOf(x vnode) int32 {
	if x.origin == 0 && x.anchor == 0 {
		if ord, ok := r.idx.OrdOf(x.n); ok {
			return ord
		}
	}
	k := x.key()
	if id, ok := r.vords[k]; ok {
		return id
	}
	if r.vords == nil {
		r.vords = make(map[vkey]int32)
	}
	id := r.nextVOrd
	r.nextVOrd++
	r.vords[k] = id
	return id
}

// getBS borrows a cleared dedup bitset from the pool; putBS returns it.
func (r *run) getBS() bitset {
	if n := len(r.bsPool); n > 0 {
		b := r.bsPool[n-1]
		r.bsPool = r.bsPool[:n-1]
		return b
	}
	return make(bitset, (r.idx.NumNodes+63)/64)
}

func (r *run) putBS(b bitset) {
	for i := range b {
		b[i] = 0
	}
	r.bsPool = append(r.bsPool, b)
}

// constant wraps a transform's constant element as a virtual node
// attached at `at`, entering the stack at view index level.
func (r *run) constant(elem *tree.Node, level int, at vnode) vnode {
	return vnode{
		n:      elem,
		label:  elem.Label,
		sym:    r.idx.Syms.Lookup(elem.Label),
		origin: level,
		anchor: r.ordOf(at),
		states: make([]stateSet, len(r.plan.layers)),
	}
}

// eachChildAt enumerates the children of x as they appear in View_level —
// the document after the first `level` transform layers. Navigation
// passes elemsOnly; materialization needs text and comment children too
// (updates cannot touch them, so they are yielded unwrapped with no label
// or states).
func (r *run) eachChildAt(x vnode, level int, elemsOnly bool, fn func(vnode)) {
	if r.can.Stopped() {
		return
	}
	if level == x.origin || x.deadAll() {
		r.baseChildren(x, elemsOnly, fn)
		return
	}
	// The children in View_level are the children in View_{level-1} with
	// transform layer level-1 applied to them.
	li := level - 1
	parent := x.states[li]
	if parent == nil || parent.Empty() {
		// Layer li is disjoint below x: View_level and View_li agree
		// here. Lower layers may still be live, so recurse rather than
		// fall into the base loop.
		r.eachChildAt(x, li, elemsOnly, fn)
		return
	}
	t := r.plan.layers[li]
	u := &t.Query.Update
	b := r.binds[li]
	m := t.NFA
	r.eachChildAt(x, li, elemsOnly, func(ch vnode) {
		if ch.n.Kind != tree.Element {
			fn(ch)
			return
		}
		r.stats.Layers[li].NodesVisited++
		st := b.Step(parent, ch.sym, ch.label, func(id int) bool {
			for _, q := range m.States[id].Quals {
				if !r.evalQualAt(ch, q, li) {
					return false
				}
			}
			return true
		})
		if m.Matches(st) {
			switch u.Op {
			case core.Delete:
				// ch does not exist in View_level.
				return
			case core.Replace:
				fn(r.constant(u.Elem, level, ch))
				return
			case core.Rename:
				ch.label = u.Label
				ch.sym = r.renameSyms[li]
				ch.states[li] = st
				fn(ch)
				return
			}
			// Insert: the constant element appears when ch's own
			// children are enumerated (it becomes ch's last child).
		}
		ch.states[li] = st
		fn(ch)
	})
	// An insert-matched x grows the constant element as its last child in
	// View_level; layers above li navigate and transform it like any
	// other child.
	if u.Op == core.Insert && m.Matches(parent) {
		r.stats.NodesVisited++
		fn(r.constant(u.Elem, level, x))
	}
}

// baseChildren enumerates the underlying children of x: the real document
// children for origin-0 nodes, the constant-element subtree otherwise.
// Children of a node every layer is dead below inherit the nil states
// slice, so whole disjoint regions never allocate per-layer state.
func (r *run) baseChildren(x vnode, elemsOnly bool, fn func(vnode)) {
	dead := x.deadAll()
	fromDoc := x.origin == 0
	for _, ch := range x.n.Children {
		if ch.Kind != tree.Element {
			if !elemsOnly {
				fn(vnode{n: ch, origin: x.origin, anchor: x.anchor})
			}
			continue
		}
		r.stats.NodesVisited++
		c := vnode{n: ch, label: ch.Label, origin: x.origin, anchor: x.anchor}
		if fromDoc {
			// Foreign nodes (shared subtrees stolen by a more recent
			// indexing) resolve by name inside SymOf.
			c.sym = r.idx.SymOf(ch)
		} else {
			// Constant-element nodes carry symbols of the query's own
			// parse, not the document's; resolve against the document
			// table (NoSym engages the string fallback).
			c.sym = r.idx.Syms.Lookup(ch.Label)
		}
		if !dead {
			c.states = make([]stateSet, len(r.plan.layers))
		}
		fn(c)
	}
}

// selectPathAt navigates path steps through View_level. A '//' step
// immediately followed by a named step is fused into a single walk, so
// the frontier of all descendants is never materialized.
func (r *run) selectPathAt(from vnode, steps []xpath.Step, level int) []vnode {
	frontier := []vnode{from}
	for i := 0; i < len(steps); i++ {
		if len(frontier) == 0 {
			return nil
		}
		s := steps[i]
		if s.Axis == xpath.DescendantOrSelf && len(s.Quals) == 0 &&
			i+1 < len(steps) && steps[i+1].Axis == xpath.Child {
			frontier = r.applyDescChildAt(frontier, steps[i+1], level)
			i++
			continue
		}
		frontier = r.applyStepAt(frontier, s, level)
	}
	return frontier
}

// applyDescChildAt evaluates the fused step '//l[q]' over View_level: all
// matching children of the frontier's self-or-descendant nodes, in one
// walk. Deduplication is a bitset over virtual ordinals.
func (r *run) applyDescChildAt(frontier []vnode, s xpath.Step, level int) []vnode {
	var out []vnode
	seen := r.getBS()
	var visit func(x vnode)
	visit = func(x vnode) {
		r.eachChildAt(x, level, true, func(ch vnode) {
			if (s.Wildcard || ch.label == s.Label) && r.qualsHoldAt(ch, s.Quals, level) {
				if seen.add(r.ordOf(ch)) {
					out = append(out, ch)
				}
			}
			visit(ch)
		})
	}
	for _, f := range frontier {
		visit(f)
	}
	r.putBS(seen)
	return out
}

func (r *run) applyStepAt(frontier []vnode, s xpath.Step, level int) []vnode {
	var out []vnode
	switch s.Axis {
	case xpath.Child:
		// A node has one parent, so distinct frontier entries yield
		// distinct children: no deduplication needed.
		for _, f := range frontier {
			r.eachChildAt(f, level, true, func(ch vnode) {
				if !s.Wildcard && ch.label != s.Label {
					return
				}
				if r.qualsHoldAt(ch, s.Quals, level) {
					out = append(out, ch)
				}
			})
		}
	case xpath.DescendantOrSelf:
		// The frontier may contain a node and its own descendant, so the
		// expansion deduplicates by virtual-node ordinal.
		seen := r.getBS()
		var visit func(x vnode)
		visit = func(x vnode) {
			if r.qualsHoldAt(x, s.Quals, level) {
				if seen.add(r.ordOf(x)) {
					out = append(out, x)
				}
			}
			r.eachChildAt(x, level, true, visit)
		}
		for _, f := range frontier {
			visit(f)
		}
		r.putBS(seen)
	case xpath.Self:
		for _, f := range frontier {
			if r.qualsHoldAt(f, s.Quals, level) {
				out = append(out, f)
			}
		}
	case xpath.Attribute:
		// Attribute steps are handled by the operand/qualifier
		// evaluators, never on navigation paths.
	}
	return out
}

// qualsHoldAt evaluates step qualifiers against View_level.
func (r *run) qualsHoldAt(x vnode, quals []xpath.Qual, level int) bool {
	for _, q := range quals {
		if !r.evalQualAt(x, q, level) {
			return false
		}
	}
	return true
}

// evalQualAt evaluates one qualifier at x over View_level. It is used
// both for the user query's qualifiers (level = full stack) and for the
// qualifiers of layer i's selecting NFA (level = i: a layer's qualifiers
// see the view produced by the layers below it).
func (r *run) evalQualAt(x vnode, q xpath.Qual, level int) bool {
	if x.deadAll() {
		// No layer below `level` is live at x (entries at or above level
		// are nil by the level discipline), so plain evaluation over the
		// real subtree is exact — and much cheaper than the update-aware
		// machinery.
		return xpath.EvalQual(x.n, q)
	}
	switch q := q.(type) {
	case *xpath.TrueQual:
		return true
	case *xpath.LabelQual:
		return x.n.Kind == tree.Element && x.label == q.Label
	case *xpath.AndQual:
		return r.evalQualAt(x, q.L, level) && r.evalQualAt(x, q.R, level)
	case *xpath.OrQual:
		return r.evalQualAt(x, q.L, level) || r.evalQualAt(x, q.R, level)
	case *xpath.NotQual:
		return !r.evalQualAt(x, q.X, level)
	case *xpath.PathQual:
		return r.pathTestAt(x, q.Path, xpath.OpNone, "", level)
	case *xpath.CmpQual:
		return r.pathTestAt(x, q.Path, q.Op, q.Lit, level)
	default:
		return false
	}
}

// splitAttrTail splits a qualifier or operand path into its navigation
// steps and the trailing attribute name, if any. It is the one home of
// the attribute-tail convention shared by pathTestAt, operandValues and
// holeNodes: a path like a/b/@id navigates a/b and then reads @id, an
// attribute-only path @id reads the attribute of the context node itself
// (no steps), and a nil or empty path yields (nil, "").
func splitAttrTail(p *xpath.Path) (steps []xpath.Step, attr string) {
	if p == nil {
		return nil, ""
	}
	steps = p.Steps
	if k := len(steps); k > 0 && steps[k-1].Axis == xpath.Attribute {
		return steps[:k-1], steps[k-1].Label
	}
	return steps, ""
}

// pathTestAt mirrors xpath's qualifier path evaluation over View_level.
// Node values and attributes are unaffected by the update kinds of §2
// (they add, remove or relabel element nodes, and Value reads immediate
// text children only), so only navigation is update-aware.
func (r *run) pathTestAt(x vnode, p *xpath.Path, op xpath.CmpOp, lit string, level int) bool {
	steps, attr := splitAttrTail(p)
	for _, m := range r.selectPathAt(x, steps, level) {
		if attr != "" {
			v, ok := m.n.Attr(attr)
			if !ok {
				continue
			}
			if op == xpath.OpNone || xpath.Compare(v, op, lit) {
				return true
			}
			continue
		}
		if op == xpath.OpNone || xpath.Compare(m.n.Value(), op, lit) {
			return true
		}
	}
	return false
}

// condsHold evaluates the user query's where clause at x over the full
// stack.
func (r *run) condsHold(x vnode) bool {
	for _, cond := range r.plan.user.Conds {
		if !r.condHolds(x, cond) {
			return false
		}
	}
	return true
}

func (r *run) condHolds(x vnode, cond xquery.Cond) bool {
	for _, l := range r.operandValues(x, cond.L) {
		for _, v := range r.operandValues(x, cond.R) {
			if xpath.Compare(l, cond.Op, v) {
				return true
			}
		}
	}
	return false
}

func (r *run) operandValues(x vnode, o xquery.Operand) []string {
	if o.IsConst {
		return []string{o.Const}
	}
	if o.Path == nil || len(o.Path.Steps) == 0 {
		return []string{x.n.Value()}
	}
	if x.deadAll() {
		return xquery.Operand{Path: o.Path}.Values(x.n)
	}
	steps, attr := splitAttrTail(o.Path)
	var out []string
	for _, m := range r.selectPathAt(x, steps, len(r.plan.layers)) {
		if attr != "" {
			if v, ok := m.n.Attr(attr); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, m.n.Value())
	}
	return out
}

// instantiate builds the return template for one binding, materializing
// hole subtrees with the embedded topDown (§4, "The value to be
// returned").
func (r *run) instantiate(it xquery.Item, x vnode) []*tree.Node {
	switch it := it.(type) {
	case *xquery.TextItem:
		return []*tree.Node{tree.NewText(it.Data)}
	case *xquery.Hole:
		return r.holeNodes(it.Operand, x)
	case *xquery.ElemTemplate:
		e := tree.NewElement(it.Label)
		for _, child := range it.Items {
			e.Children = append(e.Children, r.instantiate(child, x)...)
		}
		return []*tree.Node{e}
	default:
		return nil
	}
}

func (r *run) holeNodes(o xquery.Operand, x vnode) []*tree.Node {
	if o.IsConst {
		return []*tree.Node{tree.NewText(o.Const)}
	}
	targets := []vnode{x}
	if o.Path != nil && len(o.Path.Steps) > 0 {
		steps, attr := splitAttrTail(o.Path)
		if attr != "" {
			// Attribute holes yield the attribute values as text.
			var out []*tree.Node
			for _, v := range r.operandValues(x, o) {
				out = append(out, tree.NewText(v))
			}
			return out
		}
		targets = r.selectPathAt(x, steps, len(r.plan.layers))
	}
	out := make([]*tree.Node, 0, len(targets))
	for _, t := range targets {
		out = append(out, r.materialize(t))
	}
	return out
}

// materialize turns a virtual context node into the real tree node it
// denotes in the top view — the embedded topDown of §4, generalized to
// stacks: one walk of the virtual document applies every remaining layer,
// with no per-layer intermediate. Subtrees no layer can touch are shared
// with the source document; constant-element subtrees are copied per
// occurrence, like an XQuery element constructor.
func (r *run) materialize(x vnode) *tree.Node {
	if x.deadAll() {
		if x.origin > 0 {
			size := x.n.Size()
			r.stats.Materialized += size
			r.stats.Layers[x.origin-1].Materialized += size
			return x.n.DeepCopy()
		}
		return x.n
	}
	r.stats.Materialized++
	for i, s := range x.states {
		if s != nil && !s.Empty() {
			r.stats.Layers[i].Materialized++
		}
	}
	out := &tree.Node{Kind: tree.Element, Label: x.label, Attrs: x.n.Attrs}
	// Detect the no-op case as we go: when every child materializes to
	// the original pointer in the original order, the node itself can be
	// shared with the source (origin-0 nodes only — constant elements
	// must stay fresh copies).
	shared := x.origin == 0 && x.label == x.n.Label
	i := 0
	r.eachChildAt(x, len(r.plan.layers), false, func(c vnode) {
		var m *tree.Node
		if c.n.Kind != tree.Element {
			m = c.n
		} else {
			m = r.materialize(c)
		}
		if shared && (i >= len(x.n.Children) || x.n.Children[i] != m) {
			shared = false
		}
		i++
		out.Children = append(out.Children, m)
	})
	if shared && i == len(x.n.Children) {
		return x.n
	}
	return out
}
