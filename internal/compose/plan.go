package compose

import (
	"context"
	"fmt"
	"strings"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xquery"
)

// Plan is an immutable composition plan: a stack of one or more transform
// queries (applied in order: the first layer transforms the source
// document, each later layer transforms the previous layer's virtual
// output) composed with a user query evaluated over the top of the stack.
// This generalizes the Compose Method of §4 from one transform query to
// the view chains its applications imply — a security view defined over a
// virtual update over a hypothetical state — while keeping the single
// pass: no layer is ever materialized.
//
// A Plan carries no evaluation state. Eval builds a fresh run per call,
// so one Plan may be evaluated from any number of goroutines
// concurrently; construction cost is validation only (the compiled
// transforms are shared with their engine).
type Plan struct {
	layers []*core.Compiled
	user   *xquery.UserQuery
}

// Stats counts work done by one evaluation, to substantiate the "accesses
// only the relevant part of the document" claim.
type Stats struct {
	NodesVisited int // virtual nodes enumerated during navigation
	Materialized int // nodes materialized by the embedded topDown
}

// ViewStats reports the work of one stacked-view evaluation: totals over
// the whole run, plus one Stats per transform layer. Layer i's
// NodesVisited counts the virtual nodes its automaton consumed; its
// Materialized counts result nodes built while that layer was still live
// (could still rewrite the subtree) plus, for its constant elements,
// the copied subtree sizes. ViewStats is returned by value, so callers
// may retain it across concurrent evaluations.
type ViewStats struct {
	Stats
	Layers []Stats
	// ReusedSubtrees counts memoized subtree images a Stack delta run
	// spliced into the result without traversal (zero on full runs).
	ReusedSubtrees int
	// DeltaCommits and FullCommits count, cumulatively per maintained
	// materialization, how many commits were absorbed by the delta
	// path versus full recomposition. They are filled in by the ivm
	// maintenance layer, not by single evaluations.
	DeltaCommits int
	FullCommits  int
}

// NewPlan builds the composition of a transform stack and a user query.
// The layers slice is copied; the compiled transforms themselves are
// immutable and shared.
func NewPlan(layers []*core.Compiled, user *xquery.UserQuery) (*Plan, error) {
	if len(layers) == 0 {
		return nil, xerr.New(xerr.Compile, "", "compose: view stack is empty")
	}
	for i, l := range layers {
		if l == nil {
			return nil, xerr.New(xerr.Compile, "", "compose: nil transform at layer %d", i)
		}
	}
	if user == nil {
		return nil, xerr.New(xerr.Compile, "", "compose: nil user query")
	}
	if err := user.Validate(); err != nil {
		return nil, xerr.Wrap(xerr.Compile, err)
	}
	return &Plan{layers: append([]*core.Compiled(nil), layers...), user: user}, nil
}

// NumLayers returns the number of transform layers in the stack.
func (p *Plan) NumLayers() int { return len(p.layers) }

// Layer returns the compiled transform of layer i. Treat it as read-only.
func (p *Plan) Layer(i int) *core.Compiled { return p.layers[i] }

// User returns the user query. Treat it as read-only.
func (p *Plan) User() *xquery.UserQuery { return p.user }

// Eval evaluates the composition over doc in a single pass, returning a
// document with the <result> root of the paper's examples and the
// statistics of the run. Cancelling ctx aborts navigation at node
// granularity. Eval is safe for concurrent use: all per-run state lives
// in a run value created here.
func (p *Plan) Eval(ctx context.Context, doc *tree.Node) (*tree.Node, ViewStats, error) {
	// Navigation polls cancellation every few hundred nodes, which a
	// small document may never reach; check up front so an
	// already-cancelled context fails deterministically.
	if ctx != nil && ctx.Err() != nil {
		return nil, ViewStats{}, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	r := newRun(p, core.NewCanceler(ctx), doc)
	root := vnode{n: doc, states: p.initialStates()}
	result := tree.NewElement("result")
	for _, x := range r.selectPathAt(root, p.user.Path.Steps, len(p.layers)) {
		if !r.condsHold(x) {
			continue
		}
		result.Children = append(result.Children, r.instantiate(p.user.Return, x)...)
	}
	if err := r.can.Err(); err != nil {
		return nil, r.stats, err
	}
	return tree.NewDocument(result), r.stats, nil
}

// Materialize evaluates the transform stack sequentially with method m,
// materializing every intermediate view, and returns the final view (no
// user query). It is the baseline the single-pass machinery is measured
// against and the correctness oracle of the property tests.
func (p *Plan) Materialize(ctx context.Context, doc *tree.Node, m core.Method) (*tree.Node, error) {
	cur := doc
	for _, l := range p.layers {
		var err error
		cur, err = l.EvalContext(ctx, cur, m)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// EvalSequential is the Naive Composition Method generalized to stacks:
// materialize each layer in turn with method m, then run the user query
// over the final materialized view.
func (p *Plan) EvalSequential(ctx context.Context, doc *tree.Node, m core.Method) (*tree.Node, error) {
	mid, err := p.Materialize(ctx, doc, m)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	return p.user.Eval(mid)
}

// initialStates returns one initial state set per layer — the sets in
// force at the document node of every view in the stack.
func (p *Plan) initialStates() []stateSet {
	out := make([]stateSet, len(p.layers))
	for i, l := range p.layers {
		out[i] = l.NFA.InitialSet()
	}
	return out
}

// String identifies the plan.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("view(")
	for i, l := range p.layers {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprint(&b, l.Query)
	}
	b.WriteString(" | ")
	fmt.Fprint(&b, p.user)
	b.WriteString(")")
	return b.String()
}
