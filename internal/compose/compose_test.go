package compose

import (
	"math/rand"
	"strings"
	"testing"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

const site = `<site>
<people>
  <person id="person0"><name>Ada</name><profile><age>33</age></profile></person>
  <person id="person10"><name>Bob</name><profile><age>19</age></profile></person>
  <person id="person2"><name>Cyd</name><profile><age>25</age></profile></person>
</people>
<regions>
  <africa><item id="item0"><location>United States</location><quantity>5</quantity><name>chair</name></item></africa>
  <asia><item id="item1"><location>Japan</location><quantity>1</quantity><name>desk</name></item></asia>
</regions>
<open_auctions>
  <open_auction id="open_auction0"><initial>15</initial><reserve>60</reserve>
    <bidder><increase>12</increase></bidder>
    <bidder><increase>3</increase></bidder>
  </open_auction>
  <open_auction id="open_auction2"><initial>5</initial>
    <bidder><increase>20</increase></bidder>
  </open_auction>
</open_auctions>
</site>`

func parseDoc(t *testing.T, s string) *tree.Node {
	t.Helper()
	d, err := sax.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compileT(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// reference computes Q(Qt(T)) by materializing the transform with the
// copy-and-update baseline.
func reference(t *testing.T, qt *core.Compiled, q *xquery.UserQuery, doc *tree.Node) *tree.Node {
	t.Helper()
	mid, err := qt.Eval(doc, core.MethodCopyUpdate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Eval(mid)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkAll verifies Composed and NaiveComposition against the reference.
func checkAll(t *testing.T, qtSrc, qSrc, docXML string) *tree.Node {
	t.Helper()
	doc := parseDoc(t, docXML)
	qt := compileT(t, qtSrc)
	q := xquery.MustParse(qSrc)
	want := reference(t, qt, q, doc)

	comp, err := New(qt, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Fatalf("Compose disagrees with reference:\n Qt: %s\n Q:  %s\n got  %s\n want %s",
			qtSrc, qSrc, got, want)
	}
	naive, err := NewNaive(qt, q)
	if err != nil {
		t.Fatal(err)
	}
	ngot, err := naive.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(ngot, want) {
		t.Fatalf("NaiveComposition disagrees with reference:\n got %s\nwant %s", ngot, want)
	}
	return got
}

func TestExample41SecurityView(t *testing.T) {
	// Example 4.1/4.2: the security view deletes suppliers from country
	// 'A'; the user asks for keyboard suppliers.
	const db = `<db>
	  <part><pname>keyboard</pname>
	    <supplier><sname>HP</sname><country>US</country></supplier>
	    <supplier><sname>Spy</sname><country>A</country></supplier>
	  </part>
	  <part><pname>mouse</pname>
	    <supplier><sname>Dell</sname><country>A</country></supplier>
	  </part>
	</db>`
	got := checkAll(t,
		`transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"] return $a`,
		`for $x in /db/part[pname = "keyboard"]/supplier return $x`,
		db)
	root := got.Root()
	if len(root.Children) != 1 {
		t.Fatalf("result = %s", got)
	}
	if tree.CountLabel(root, "sname") != 1 || root.Children[0].Children[0].Value() != "HP" {
		t.Errorf("wrong supplier survived: %s", got)
	}
}

func TestDeleteQualifierQ1(t *testing.T) {
	// Q1/Q1c: delete a/b[q]; user asks a/b/c.
	const docXML = `<a>
	  <b><q/><c>hidden</c></b>
	  <b><c>visible</c></b>
	</a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do delete $r/a/b[q] return $r`,
		`for $x in /a/b/c return $x`,
		docXML)
	if got.Root().Children[0].Value() != "visible" || len(got.Root().Children) != 1 {
		t.Errorf("result = %s", got)
	}
}

func TestDeleteUnconditionalQ2(t *testing.T) {
	// Q2/Q2c: delete a/b/c; user query's qualifier not(./c = 'A') is
	// decided by the deletion.
	const docXML = `<a><b><c>A</c><d>keep</d></b><b><c>B</c></b></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do delete $r/a/b/c return $r`,
		`for $x in /a/b[not(c = "A")] return $x`,
		docXML)
	// After the delete no b has a c child, so both b's qualify.
	if len(got.Root().Children) != 2 {
		t.Errorf("result = %s", got)
	}
	if tree.CountLabel(got, "c") != 0 {
		t.Errorf("c nodes visible through composition: %s", got)
	}
}

func TestInsertQ3(t *testing.T) {
	// Q3/Q3c: insert e into a//c; user asks for a/b (whose subtrees can
	// contain inserted elements → topDown materialization).
	const docXML = `<a><b><c><d/></c></b><b><x/></b></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do insert <e/> into $r/a//c return $r`,
		`for $x in /a/b return $x`,
		docXML)
	if tree.CountLabel(got, "e") != 1 {
		t.Errorf("inserted element not materialized: %s", got)
	}
}

func TestInsertVisibleToNavigation(t *testing.T) {
	// The user query navigates *into* the inserted element.
	const docXML = `<a><b/></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do insert <e><tag>new</tag></e> into $r/a/b return $r`,
		`for $x in /a/b/e/tag return $x`,
		docXML)
	if len(got.Root().Children) != 1 || got.Root().Children[0].Value() != "new" {
		t.Errorf("navigation into inserted element failed: %s", got)
	}
}

func TestInsertCondSeesNewElement(t *testing.T) {
	// The where clause tests a path that only exists after the insert.
	const docXML = `<a><b><old/></b></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do insert <mark>1</mark> into $r/a/b return $r`,
		`for $x in /a/b where $x/mark = "1" return $x/old`,
		docXML)
	if len(got.Root().Children) != 1 {
		t.Errorf("condition missed inserted element: %s", got)
	}
}

func TestReplaceComposition(t *testing.T) {
	const docXML = `<a><b><secret>s</secret></b><b><pub>p</pub></b></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do replace $r/a/b[secret] with <redacted/> return $r`,
		`for $x in /a/* return $x`,
		docXML)
	if tree.CountLabel(got, "redacted") != 1 || tree.CountLabel(got, "secret") != 0 {
		t.Errorf("replace not visible: %s", got)
	}
}

func TestReplaceNavigationIntoConstant(t *testing.T) {
	const docXML = `<a><b><old/></b></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do replace $r/a/b with <nb><inner>i</inner></nb> return $r`,
		`for $x in /a/nb/inner return $x`,
		docXML)
	if len(got.Root().Children) != 1 {
		t.Errorf("navigation into replacement failed: %s", got)
	}
}

func TestRenameComposition(t *testing.T) {
	const docXML = `<a><b><x>1</x></b><c><x>2</x></c></a>`
	got := checkAll(t,
		`transform copy $r := doc("f") modify do rename $r/a/b as c return $r`,
		`for $x in /a/c/x return $x`,
		docXML)
	if len(got.Root().Children) != 2 {
		t.Errorf("rename not visible to navigation: %s", got)
	}
}

func TestPaperPairU9U1Disjoint(t *testing.T) {
	// (U9, U1): delete on regions//item, query on people — largely
	// disjoint; composition must not materialize anything.
	doc := parseDoc(t, site)
	qt := compileT(t, `transform copy $a := doc("f") modify do delete $a/site/regions//item[location = "United States"] return $a`)
	q := xquery.MustParse(`for $x in /site/people/person return $x`)
	comp, err := New(qt, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, qt, q, doc)
	if !tree.Equal(got, want) {
		t.Fatalf("disjoint composition wrong:\n got %s\nwant %s", got, want)
	}
	if comp.LastStats.Materialized != 0 {
		t.Errorf("disjoint composition materialized %d nodes", comp.LastStats.Materialized)
	}
}

func TestPaperPairU8U10(t *testing.T) {
	checkAll(t,
		`transform copy $a := doc("f") modify do delete $a/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder return $a`,
		`for $x in /site//open_auctions/open_auction[not(@id = "open_auction2")]/bidder[increase > 10] return $x`,
		site)
}

func TestPaperPairU1U2(t *testing.T) {
	got := checkAll(t,
		`transform copy $a := doc("f") modify do insert <watch/> into $a/site/people/person return $a`,
		`for $x in /site/people/person[@id = "person10"] return $x`,
		site)
	if tree.CountLabel(got, "watch") != 1 {
		t.Errorf("inserted element missing from returned person: %s", got)
	}
}

func TestCondOnDeletedPath(t *testing.T) {
	// Where-clause path traverses deleted region: bidders with the
	// deleted increase are invisible.
	checkAll(t,
		`transform copy $a := doc("f") modify do delete $a/site/open_auctions/open_auction/bidder[increase > 10] return $a`,
		`for $x in /site/open_auctions/open_auction where $x/bidder/increase > 2 return $x/@id`,
		site)
}

func TestTemplateReturn(t *testing.T) {
	checkAll(t,
		`transform copy $a := doc("f") modify do delete $a/site/people/person[profile/age > 20] return $a`,
		`for $x in /site/people/person return <who>{$x/name}</who>`,
		site)
}

// Property: Compose ≡ NaiveComposition ≡ Q(Qt(T)) on random documents,
// random transform paths and random user queries.
func TestComposeAgreesRandom(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	elem := tree.NewElement("b", tree.NewText("1"))
	checked := 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := tree.Generate(rng, genOpts)
		tp := xpath.RandomPath(rng, cfg)
		u := core.Update{Path: tp}
		switch rng.Intn(4) {
		case 0:
			u.Op = core.Insert
			u.Elem = elem
		case 1:
			u.Op = core.Delete
		case 2:
			u.Op = core.Replace
			u.Elem = elem
		case 3:
			u.Op = core.Rename
			u.Label = "c"
		}
		qt, err := (&core.Query{Var: "a", Doc: "gen", Update: u}).Compile()
		if err != nil {
			continue
		}
		q := &xquery.UserQuery{
			Var:    "x",
			Path:   xpath.RandomPath(rng, cfg),
			Return: &xquery.Hole{},
		}
		if rng.Intn(2) == 0 {
			q.Conds = []xquery.Cond{{
				L:  xquery.Operand{Path: xpath.RandomPath(rng, cfg)},
				Op: xpath.OpEq,
				R:  xquery.Operand{IsConst: true, Const: cfg.Values[rng.Intn(len(cfg.Values))]},
			}}
		}
		if rng.Intn(3) == 0 {
			q.Return = &xquery.Hole{Operand: xquery.Operand{Path: xpath.RandomPath(rng, cfg)}}
		}
		if q.Validate() != nil {
			continue
		}
		comp, err := New(qt, q)
		if err != nil {
			continue
		}
		checked++
		got, err := comp.Eval(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mid, err := qt.Eval(d, core.MethodCopyUpdate)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Eval(mid)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(got, want) {
			t.Fatalf("seed %d: compose mismatch\n Qt: %s\n Q: %s\n doc: %s\n got %s\nwant %s",
				seed, u.String("$a"), q, d, got, want)
		}
		naive, err := NewNaive(qt, q)
		if err != nil {
			t.Fatal(err)
		}
		ngot, err := naive.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(ngot, want) {
			t.Fatalf("seed %d: naive composition mismatch", seed)
		}
	}
	if checked < 300 {
		t.Fatalf("only %d/400 random compositions ran", checked)
	}
}

func TestXQueryTextShapes(t *testing.T) {
	// Q1c shape: conditional delete.
	qt := compileT(t, `transform copy $r := doc("f") modify do delete $r/a/b[q] return $r`)
	q := xquery.MustParse(`for $x in /a/b/c return $x`)
	comp, _ := New(qt, q)
	txt := comp.XQueryText()
	for _, want := range []string{"for $y1 in /a", "for $y2 in $y1/b", "if empty($y2[q])", "else ( )"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Q1c text missing %q:\n%s", want, txt)
		}
	}
	// Q2c shape: unconditional delete folds the rest away.
	qt2 := compileT(t, `transform copy $r := doc("f") modify do delete $r/a/b/c return $r`)
	q2 := xquery.MustParse(`for $x in /a/b/c/d return $x`)
	comp2, _ := New(qt2, q2)
	txt2 := comp2.XQueryText()
	if !strings.Contains(txt2, "( )") {
		t.Errorf("Q2c text should fold to the empty sequence:\n%s", txt2)
	}
	// Q3c shape: insert with // needs the topDown user function.
	qt3 := compileT(t, `transform copy $r := doc("f") modify do insert <e/> into $r/a//c return $r`)
	q3 := xquery.MustParse(`for $x in /a/b return $x`)
	comp3, _ := New(qt3, q3)
	txt3 := comp3.XQueryText()
	if !strings.Contains(txt3, "topDown(") {
		t.Errorf("Q3c text missing topDown call:\n%s", txt3)
	}
	// Naive composition text shows the sequential let.
	naive, _ := NewNaive(qt3, q3)
	ntxt := naive.XQueryText()
	for _, want := range []string{"let $n := transform", "for $x in $n/a/b"} {
		if !strings.Contains(ntxt, want) {
			t.Errorf("naive text missing %q:\n%s", want, ntxt)
		}
	}
}

func TestNewValidation(t *testing.T) {
	qt := compileT(t, `transform copy $r := doc("f") modify do delete $r/a return $r`)
	if _, err := New(nil, nil); err == nil {
		t.Errorf("nil inputs accepted")
	}
	if _, err := New(qt, &xquery.UserQuery{}); err == nil {
		t.Errorf("invalid user query accepted")
	}
	if _, err := NewNaive(nil, nil); err == nil {
		t.Errorf("nil inputs accepted by NewNaive")
	}
	q := xquery.MustParse(`for $x in /a return $x`)
	comp, err := New(qt, q)
	if err != nil {
		t.Fatal(err)
	}
	if comp.String() == "" {
		t.Errorf("empty String()")
	}
}
