package compose

import (
	"strings"
	"testing"

	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

func TestXQueryTextMoreShapes(t *testing.T) {
	// Replace/rename annotations at the matched step.
	qt := compileT(t, `transform copy $r := doc("f") modify do replace $r/a/b with <nb/> return $r`)
	comp, _ := New(qt, xquery.MustParse(`for $x in /a/b/c return $x`))
	if txt := comp.XQueryText(); !strings.Contains(txt, "replace applies") {
		t.Errorf("replace annotation missing:\n%s", txt)
	}
	qt2 := compileT(t, `transform copy $r := doc("f") modify do rename $r/a/b as z return $r`)
	comp2, _ := New(qt2, xquery.MustParse(`for $x in /a/b return $x`))
	if txt := comp2.XQueryText(); !strings.Contains(txt, "rename applies") {
		t.Errorf("rename annotation missing:\n%s", txt)
	}
	// Pending (non-final) qualified states produce the state comment.
	qt3 := compileT(t, `transform copy $r := doc("f") modify do delete $r/a[q]/b/c return $r`)
	comp3, _ := New(qt3, xquery.MustParse(`for $x in /a/b return $x`))
	if txt := comp3.XQueryText(); !strings.Contains(txt, "pending on") {
		t.Errorf("pending-state comment missing:\n%s", txt)
	}
	// Wildcard and '//' steps in the user path drive δ′.
	qt4 := compileT(t, `transform copy $r := doc("f") modify do insert <e/> into $r/a/b return $r`)
	comp4, _ := New(qt4, xquery.MustParse(`for $x in //*[q] return $x`))
	if txt := comp4.XQueryText(); !strings.Contains(txt, "topDown(") {
		t.Errorf("wildcard//desc composition should materialize via topDown:\n%s", txt)
	}
	// Template return and where clause render through the printer.
	comp5, _ := New(qt4, xquery.MustParse(`for $x in /a/b where $x/c = "1" return <t>{$x/c}</t>`))
	txt := comp5.XQueryText()
	for _, want := range []string{"where", `<t>`, "insert reaches its target"} {
		if !strings.Contains(txt, want) {
			t.Errorf("missing %q in:\n%s", want, txt)
		}
	}
	// Disjoint user query: bare return without topDown.
	comp6, _ := New(qt4, xquery.MustParse(`for $x in /zzz/yyy return $x`))
	if txt := comp6.XQueryText(); strings.Contains(txt, "topDown(") {
		t.Errorf("disjoint composition should not materialize:\n%s", txt)
	}
}

func TestDeltaPrimeSelf(t *testing.T) {
	qt := compileT(t, `transform copy $r := doc("f") modify do delete $r/a//b return $r`)
	s := qt.NFA.InitialSet()
	out := deltaPrime(qt.NFA, s, xpath.Step{Axis: xpath.Self})
	if !out.Equal(s) {
		t.Errorf("δ′ on a self step must not move the state set")
	}
}
