package compose

import (
	"fmt"
	"strings"

	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// This file renders the composition in the XQuery form of §4 (examples
// Q1c/Q2c/Q3c): the user query's for clause becomes a cascade of for
// loops, the transform query's qualifiers become "if empty(...)"
// conditionals at the steps where the selecting NFA may enter a qualified
// state, delete-matched steps short-circuit to "( )", and returned values
// that may still carry pending updates are wrapped in the embedded
// topDown() user-defined function. Eval executes the identical state
// discipline directly; the text is the inspectable artifact.

// deltaPrime is the extension δ′ of the transition function (§4): a user
// query step is treated as a "letter". Wildcards take every label
// transition, '//' takes the closure over unbounded '*' sequences.
func deltaPrime(m *automaton.NFA, s automaton.StateSet, step xpath.Step) automaton.StateSet {
	switch step.Axis {
	case xpath.Child:
		if !step.Wildcard {
			return m.Step(s, step.Label, nil)
		}
		// δ′((s,[q]),∗) ⊇ δ((s,[q]),l) for every tag l.
		out := m.NewSet()
		for _, id := range s.IDs() {
			st := &m.States[id]
			if st.SelfLoop {
				addWithEps(m, out, id)
			}
			if st.Next >= 0 {
				addWithEps(m, out, st.Next)
			}
		}
		return out
	case xpath.DescendantOrSelf:
		// δ′((s,[q]),//): all states reachable via any sequence of ∗.
		out := s.Clone()
		for {
			grown := deltaPrime(m, out, xpath.Step{Axis: xpath.Child, Wildcard: true})
			merged := out.Clone()
			for _, id := range grown.IDs() {
				merged.Add(id)
			}
			if merged.Equal(out) {
				return out
			}
			out = merged
		}
	default: // Self
		return s.Clone()
	}
}

func addWithEps(m *automaton.NFA, set automaton.StateSet, id int) {
	for id >= 0 {
		if set.Has(id) {
			return
		}
		set.Add(id)
		id = m.States[id].Eps
	}
}

// XQueryText renders the composed query Qc in standard XQuery following
// the paper's rewriting. The text tracks the static (may-)state sets Si;
// qualifier outcomes that are only known at runtime appear as the
// conditionals of the printed query, exactly as in examples Q1c-Q3c.
func (c *Composed) XQueryText() string {
	m := c.Transform.NFA
	u := &c.Transform.Query.Update
	var b strings.Builder
	b.WriteString("<result> {\n")
	s := m.InitialSet()
	steps := c.User.Path.Steps
	indent := ""

	i := 0
	loopVar := 0
	prev := "" // previous loop variable, "" = document
	for _, st := range steps {
		if st.Axis == xpath.DescendantOrSelf {
			s = deltaPrime(m, s, st)
			continue
		}
		i++
		loopVar++
		v := fmt.Sprintf("y%d", loopVar)
		src := "/"
		if prev != "" {
			src = "$" + prev + "/"
		}
		stepTxt := renderStep(st)
		next := deltaPrime(m, s, st)

		fmt.Fprintf(&b, "%sfor $%s in %s%s\n", indent, v, src, stepTxt)
		indent += "  "

		// Qualifiers of states the NFA may enter at this step become a
		// runtime conditional (§4, "Handling qualifiers and the final
		// state in Si").
		var conds []string
		finalEntered := false
		for _, id := range next.IDs() {
			state := &m.States[id]
			if state.Final {
				finalEntered = true
			}
			for _, q := range state.Quals {
				conds = append(conds, q.String())
			}
		}
		cond := strings.Join(conds, " and ")
		if finalEntered {
			switch u.Op {
			case core.Delete:
				if cond == "" {
					// Unconditional delete of every node this loop
					// binds: the rest folds to the empty sequence
					// (example Q2c folds the qualifier instead).
					fmt.Fprintf(&b, "%sreturn ( ) (: deleted by %s :)\n", indent, u.String("$a"))
					b.WriteString("} </result>")
					return b.String()
				}
				fmt.Fprintf(&b, "%sreturn if empty($%s[%s]) then\n", indent, v, cond)
				indent += "  "
			case core.Insert:
				fmt.Fprintf(&b, "%s(: insert reaches its target here; $%s subtrees are materialized below :)\n", indent, v)
			case core.Replace, core.Rename:
				fmt.Fprintf(&b, "%s(: %s applies at $%s :)\n", indent, u.Op, v)
			}
		} else if cond != "" {
			fmt.Fprintf(&b, "%s(: states %v pending on [%s] :)\n", indent, next.IDs(), cond)
		}
		s = next
		prev = v
	}

	fmt.Fprintf(&b, "%slet $x := $%s\n", indent, prev)
	if len(c.User.Conds) > 0 {
		var cs []string
		for _, cond := range c.User.Conds {
			cs = append(cs, cond.String("x"))
		}
		fmt.Fprintf(&b, "%swhere %s\n", indent, strings.Join(cs, " and "))
	}
	ret := renderReturn(c.User, s.Empty())
	fmt.Fprintf(&b, "%sreturn %s\n", indent, ret)
	if d, ok := c.User.Return.(*xquery.Hole); ok && !s.Empty() && !d.Operand.IsConst {
		fmt.Fprintf(&b, "%s(: topDown(Mp, S=%v, Qt, ·) is the user-defined function of Fig. 3 :)\n",
			indent, s.IDs())
	}
	// Close a pending delete conditional, if any.
	if strings.Contains(b.String(), "then\n") {
		fmt.Fprintf(&b, "%selse ( )\n", strings.TrimSuffix(indent, "  "))
	}
	b.WriteString("} </result>")
	return b.String()
}

func renderStep(st xpath.Step) string {
	var b strings.Builder
	if st.Wildcard {
		b.WriteByte('*')
	} else {
		b.WriteString(st.Label)
	}
	for _, q := range st.Quals {
		b.WriteByte('[')
		b.WriteString(q.String())
		b.WriteByte(']')
	}
	return b.String()
}

func renderReturn(q *xquery.UserQuery, disjoint bool) string {
	switch r := q.Return.(type) {
	case *xquery.Hole:
		op := r.Operand.String("x")
		if disjoint {
			return op
		}
		return fmt.Sprintf("topDown(Mp, S, Qt, %s)", op)
	default:
		full := q.String()
		if idx := lastReturn(full); idx >= 0 {
			return strings.TrimSpace(full[idx+len(" return "):])
		}
		return full
	}
}
