package compose

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// randomComposition couples a document, a compilable transform query and a
// valid user query.
type randomComposition struct {
	Doc  *tree.Node
	Qt   *core.Compiled
	User *xquery.UserQuery
}

// Generate implements quick.Generator.
func (randomComposition) Generate(r *rand.Rand, _ int) reflect.Value {
	doc := tree.Generate(r, tree.DefaultGenOptions())
	cfg := xpath.DefaultGenConfig()
	var qt *core.Compiled
	for {
		u := core.Update{Path: xpath.RandomPath(r, cfg)}
		switch r.Intn(4) {
		case 0:
			u.Op = core.Insert
			u.Elem = tree.NewElement("b", tree.NewText("1"))
		case 1:
			u.Op = core.Delete
		case 2:
			u.Op = core.Replace
			u.Elem = tree.NewElement("part")
		case 3:
			u.Op = core.Rename
			u.Label = "c"
		}
		c, err := (&core.Query{Var: "a", Doc: "gen", Update: u}).Compile()
		if err == nil {
			qt = c
			break
		}
	}
	var user *xquery.UserQuery
	for {
		user = &xquery.UserQuery{Var: "x", Path: xpath.RandomPath(r, cfg), Return: &xquery.Hole{}}
		if r.Intn(2) == 0 {
			user.Conds = []xquery.Cond{{
				L:  xquery.Operand{Path: xpath.RandomPath(r, cfg)},
				Op: []xpath.CmpOp{xpath.OpEq, xpath.OpNe, xpath.OpLt, xpath.OpGt}[r.Intn(4)],
				R:  xquery.Operand{IsConst: true, Const: cfg.Values[r.Intn(len(cfg.Values))]},
			}}
		}
		if r.Intn(3) == 0 {
			user.Return = &xquery.Hole{Operand: xquery.Operand{Path: xpath.RandomPath(r, cfg)}}
		}
		if user.Validate() == nil {
			break
		}
	}
	return reflect.ValueOf(randomComposition{Doc: doc, Qt: qt, User: user})
}

// Property: the Compose Method, the Naive Composition and the literal
// Q(Qt(T)) reference agree on arbitrary inputs.
func TestQuickCompositionEquivalence(t *testing.T) {
	prop := func(tc randomComposition) bool {
		comp, err := New(tc.Qt, tc.User)
		if err != nil {
			return false
		}
		got, err := comp.Eval(tc.Doc)
		if err != nil {
			return false
		}
		mid, err := tc.Qt.Eval(tc.Doc, core.MethodCopyUpdate)
		if err != nil {
			return false
		}
		want, err := tc.User.Eval(mid)
		if err != nil {
			return false
		}
		if !tree.Equal(got, want) {
			return false
		}
		naive, err := NewNaive(tc.Qt, tc.User)
		if err != nil {
			return false
		}
		ngot, err := naive.Eval(tc.Doc)
		if err != nil {
			return false
		}
		return tree.Equal(ngot, want)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: composing with a transform whose path is disjoint from the
// user query's navigation never materializes nodes.
func TestQuickDisjointNoMaterialization(t *testing.T) {
	prop := func(tc randomComposition) bool {
		// Force a transform on a label absent from the generator
		// vocabulary: guaranteed disjoint.
		qt, err := (&core.Query{Var: "a", Doc: "gen", Update: core.Update{
			Op:   core.Delete,
			Path: xpath.MustParse("nowhere/never"),
		}}).Compile()
		if err != nil {
			return false
		}
		comp, err := New(qt, tc.User)
		if err != nil {
			return false
		}
		if _, err := comp.Eval(tc.Doc); err != nil {
			return false
		}
		return comp.LastStats.Materialized == 0
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
