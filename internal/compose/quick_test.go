package compose

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xmark"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// randomComposition couples a document, a compilable transform query and a
// valid user query.
type randomComposition struct {
	Doc  *tree.Node
	Qt   *core.Compiled
	User *xquery.UserQuery
}

// Generate implements quick.Generator.
func (randomComposition) Generate(r *rand.Rand, _ int) reflect.Value {
	doc := tree.Generate(r, tree.DefaultGenOptions())
	cfg := xpath.DefaultGenConfig()
	var qt *core.Compiled
	for {
		u := core.Update{Path: xpath.RandomPath(r, cfg)}
		switch r.Intn(4) {
		case 0:
			u.Op = core.Insert
			u.Elem = tree.NewElement("b", tree.NewText("1"))
		case 1:
			u.Op = core.Delete
		case 2:
			u.Op = core.Replace
			u.Elem = tree.NewElement("part")
		case 3:
			u.Op = core.Rename
			u.Label = "c"
		}
		c, err := (&core.Query{Var: "a", Doc: "gen", Update: u}).Compile()
		if err == nil {
			qt = c
			break
		}
	}
	var user *xquery.UserQuery
	for {
		user = &xquery.UserQuery{Var: "x", Path: xpath.RandomPath(r, cfg), Return: &xquery.Hole{}}
		if r.Intn(2) == 0 {
			user.Conds = []xquery.Cond{{
				L:  xquery.Operand{Path: xpath.RandomPath(r, cfg)},
				Op: []xpath.CmpOp{xpath.OpEq, xpath.OpNe, xpath.OpLt, xpath.OpGt}[r.Intn(4)],
				R:  xquery.Operand{IsConst: true, Const: cfg.Values[r.Intn(len(cfg.Values))]},
			}}
		}
		if r.Intn(3) == 0 {
			user.Return = &xquery.Hole{Operand: xquery.Operand{Path: xpath.RandomPath(r, cfg)}}
		}
		if user.Validate() == nil {
			break
		}
	}
	return reflect.ValueOf(randomComposition{Doc: doc, Qt: qt, User: user})
}

// Property: the Compose Method, the Naive Composition and the literal
// Q(Qt(T)) reference agree on arbitrary inputs.
func TestQuickCompositionEquivalence(t *testing.T) {
	prop := func(tc randomComposition) bool {
		comp, err := New(tc.Qt, tc.User)
		if err != nil {
			return false
		}
		got, err := comp.Eval(tc.Doc)
		if err != nil {
			return false
		}
		mid, err := tc.Qt.Eval(tc.Doc, core.MethodCopyUpdate)
		if err != nil {
			return false
		}
		want, err := tc.User.Eval(mid)
		if err != nil {
			return false
		}
		if !tree.Equal(got, want) {
			return false
		}
		naive, err := NewNaive(tc.Qt, tc.User)
		if err != nil {
			return false
		}
		ngot, err := naive.Eval(tc.Doc)
		if err != nil {
			return false
		}
		return tree.Equal(ngot, want)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// xmarkGenConfig drives the random path generator with XMark's
// vocabulary, so random stacks and user queries have non-trivial
// selectivity on generated XMark documents.
func xmarkGenConfig() xpath.GenConfig {
	return xpath.GenConfig{
		Labels: []string{
			"site", "regions", "africa", "asia", "item", "location",
			"quantity", "name", "people", "person", "profile", "age",
			"interest", "open_auctions", "open_auction", "initial",
			"reserve", "bidder", "increase", "mark",
		},
		Attrs:    []string{"id", "category"},
		Values:   []string{"1", "10", "United States", "Japan", "yes"},
		MaxSteps: 4,
		MaxQual:  2,
	}
}

// randomUpdate draws one embedded update covering all four kinds. The
// constant elements reuse vocabulary labels, so later layers and user
// queries can reach into them.
func randomUpdate(r *rand.Rand, cfg xpath.GenConfig) core.Update {
	u := core.Update{Path: xpath.RandomPath(r, cfg)}
	switch r.Intn(4) {
	case 0:
		u.Op = core.Insert
		u.Elem = tree.NewElement("mark", tree.NewElement("name", tree.NewText("yes")))
	case 1:
		u.Op = core.Delete
	case 2:
		u.Op = core.Replace
		u.Elem = tree.NewElement("item", tree.NewText("redacted"))
	case 3:
		u.Op = core.Rename
		u.Label = cfg.Labels[r.Intn(len(cfg.Labels))]
	}
	return u
}

// Property: for randomized XMark configs and 2-3-layer view stacks over
// all four update kinds, the single-pass Plan.Eval agrees with
// sequentially materializing each transform and then running the user
// query (the Naive Composition oracle, generalized to stacks).
func TestQuickStackEquivalenceXMark(t *testing.T) {
	cfg := xmarkGenConfig()
	checked := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		doc, err := xmark.Generate(xmark.Config{
			Factor: 0.0005 + rng.Float64()*0.002,
			Seed:   rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		depth := 2 + rng.Intn(2)
		layers := make([]*core.Compiled, 0, depth)
		for len(layers) < depth {
			c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
			if err != nil {
				continue
			}
			layers = append(layers, c)
		}
		user := &xquery.UserQuery{Var: "x", Path: xpath.RandomPath(rng, cfg), Return: &xquery.Hole{}}
		if rng.Intn(2) == 0 {
			user.Conds = []xquery.Cond{{
				L:  xquery.Operand{Path: xpath.RandomPath(rng, cfg)},
				Op: []xpath.CmpOp{xpath.OpEq, xpath.OpNe, xpath.OpLt, xpath.OpGt}[rng.Intn(4)],
				R:  xquery.Operand{IsConst: true, Const: cfg.Values[rng.Intn(len(cfg.Values))]},
			}}
		}
		if rng.Intn(3) == 0 {
			user.Return = &xquery.Hole{Operand: xquery.Operand{Path: xpath.RandomPath(rng, cfg)}}
		}
		if user.Validate() != nil {
			continue
		}
		p, err := NewPlan(layers, user)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		got, _, err := p.Eval(context.Background(), doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := p.EvalSequential(context.Background(), doc, core.MethodCopyUpdate)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !tree.Equal(got, want) {
			var stack []string
			for _, l := range layers {
				stack = append(stack, l.Query.Update.String("$a"))
			}
			t.Fatalf("seed %d: stack mismatch\n stack: %v\n user: %s\n got  %s\n want %s",
				seed, stack, user, got, want)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d/60 random stacks ran", checked)
	}
}

// Property: composing with a transform whose path is disjoint from the
// user query's navigation never materializes nodes.
func TestQuickDisjointNoMaterialization(t *testing.T) {
	prop := func(tc randomComposition) bool {
		// Force a transform on a label absent from the generator
		// vocabulary: guaranteed disjoint.
		qt, err := (&core.Query{Var: "a", Doc: "gen", Update: core.Update{
			Op:   core.Delete,
			Path: xpath.MustParse("nowhere/never"),
		}}).Compile()
		if err != nil {
			return false
		}
		comp, err := New(qt, tc.User)
		if err != nil {
			return false
		}
		if _, err := comp.Eval(tc.Doc); err != nil {
			return false
		}
		return comp.LastStats.Materialized == 0
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
