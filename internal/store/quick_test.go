package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

// randomUpdates builds a reproducible random sequence of XQU update
// queries over the XMark vocabulary: every op kind, child and descendant
// paths, with and without qualifiers.
func randomUpdates(t *testing.T, rng *rand.Rand, n int) []*core.Compiled {
	t.Helper()
	paths := []string{
		`$a/site/people/person`,
		`$a/site/regions//item`,
		`$a/site/open_auctions/open_auction/bidder`,
		`$a/site//description`,
		`$a/site/people/person[profile/age > 20]`,
		`$a/site/closed_auctions/closed_auction/annotation`,
	}
	out := make([]*core.Compiled, 0, n)
	for i := 0; i < n; i++ {
		p := paths[rng.Intn(len(paths))]
		var u string
		switch rng.Intn(4) {
		case 0:
			u = fmt.Sprintf(`insert <patch><n>p%d</n></patch> into %s`, i, p)
		case 1:
			u = fmt.Sprintf(`delete %s`, p)
		case 2:
			u = fmt.Sprintf(`replace %s with <stub><n>r%d</n></stub>`, p, i)
		default:
			u = fmt.Sprintf(`rename %s as relabeled%d`, p, i%3)
		}
		src := fmt.Sprintf(`transform copy $a := doc("d") modify do %s return $a`, u)
		c, err := core.MustParseQuery(src).Compile()
		if err != nil {
			t.Fatalf("compile %s: %v", src, err)
		}
		out = append(out, c)
	}
	return out
}

// TestSnapshotIsolationQuick interleaves a random XQU update sequence
// with concurrent readers and asserts every reader observes exactly one
// committed version: each snapshot renders byte-identically to the
// sequential replay of the commit log at that version — never a torn
// mix of two versions, never an uncommitted state. Run under -race in
// CI, this is the store's isolation property test.
func TestSnapshotIsolationQuick(t *testing.T) {
	const (
		updates = 40
		readers = 6
	)
	rng := rand.New(rand.NewSource(4))
	base, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomUpdates(t, rng, updates)

	// Oracle: sequential replay on a private tree, one rendering per
	// version. Version 1 is the ingest.
	oracle := make(map[uint64]string, updates+1)
	cur := base.DeepCopy()
	oracle[1] = cur.String()
	ctx := context.Background()
	for i, c := range seq {
		next, err := c.EvalContext(ctx, cur, core.MethodTopDown)
		if err != nil {
			t.Fatalf("oracle update %d: %v", i, err)
		}
		cur = next
		oracle[uint64(i+2)] = cur.String()
	}

	// Live run: one writer commits the same sequence through the store
	// while readers continuously snapshot and render.
	st := New()
	if _, _, err := st.Put("d", base, true); err != nil {
		t.Fatal(err)
	}

	type obs struct {
		version uint64
		xml     string
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		observed []obs
	)
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastV uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := st.Snapshot("d")
				if err != nil {
					panic(err)
				}
				if snap.Version() < lastV {
					panic("version went backwards within one reader")
				}
				lastV = snap.Version()
				mu.Lock()
				observed = append(observed, obs{snap.Version(), snap.Root().String()})
				mu.Unlock()
			}
		}()
	}

	for i, c := range seq {
		snap, _, err := st.Apply(ctx, "d", c, core.MethodTopDown)
		if err != nil {
			t.Fatalf("apply update %d: %v", i, err)
		}
		if snap.Version() != uint64(i+2) {
			t.Fatalf("commit %d produced version %d", i, snap.Version())
		}
		// Pace the writer so reader observations interleave with the
		// commit sequence instead of all landing on the final version
		// (commits are fast; the race detector slows readers more).
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	final, _ := st.Snapshot("d")
	if final.Root().String() != oracle[final.Version()] {
		t.Fatal("final store state diverges from sequential replay")
	}

	versionsSeen := make(map[uint64]bool)
	for _, o := range observed {
		want, ok := oracle[o.version]
		if !ok {
			t.Fatalf("reader observed version %d, which was never committed", o.version)
		}
		if o.xml != want {
			t.Fatalf("reader observed a state that is not the committed version %d", o.version)
		}
		versionsSeen[o.version] = true
	}
	if len(observed) == 0 || len(versionsSeen) < 2 {
		t.Fatalf("readers observed %d snapshots over %d distinct versions; too few to mean anything",
			len(observed), len(versionsSeen))
	}
}

// TestSnapshotEvalMatchesPlainEval pins read-path equivalence: a query
// evaluated against a store snapshot returns the same result as against
// a plain document — the snapshot machinery changes where the tree
// lives, not what queries see.
func TestSnapshotEvalMatchesPlainEval(t *testing.T) {
	base, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plain := base.DeepCopy()
	st := New()
	if _, _, err := st.Put("d", base, true); err != nil {
		t.Fatal(err)
	}
	snap, _ := st.Snapshot("d")

	for _, src := range []string{
		`transform copy $a := doc("d") modify do delete $a/site/people/person[profile/age > 20] return $a`,
		`transform copy $a := doc("d") modify do insert <flag/> into $a/site/regions//item return $a`,
		`transform copy $a := doc("d") modify do rename $a/site//description as blurb return $a`,
	} {
		c, err := core.MustParseQuery(src).Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range core.Methods() {
			got, err := c.EvalContext(context.Background(), snap.Root(), m)
			if err != nil {
				t.Fatalf("%s over snapshot: %v", m, err)
			}
			want, err := c.EvalContext(context.Background(), plain, m)
			if err != nil {
				t.Fatal(err)
			}
			if !tree.Equal(got, want) {
				t.Fatalf("%s: snapshot result diverges from plain result for %s", m, src)
			}
		}
	}
}
