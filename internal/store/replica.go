package store

// The replication surface of the store: what a follower needs to be a
// byte-faithful replica of a primary. A follower store is in-memory and
// read-only; its state advances only through ApplyLogged, which replays
// the primary's logical log records through the exact recovery machinery
// of durable.go — same chain verification, same typed Corrupt errors
// naming the primary's segment and offset on divergence. Promotion
// simply clears the read-only flag: the replica's chains are then the
// authoritative ones and normal writes continue them.

import (
	"fmt"
	"sync/atomic"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

func readOnly() error {
	return xerr.New(xerr.Conflict, "", "store: read-only follower (writes go to the primary)")
}

// NewFollower returns an empty in-memory store in follower mode: every
// write path fails with a typed Conflict error until Promote. depth is
// the per-document history ring size (0 uses DefaultHistoryDepth,
// negative disables the ring), matching NewWithHistory.
func NewFollower(depth int) *Store {
	switch {
	case depth < 0:
		depth = 0
	case depth == 0:
		depth = DefaultHistoryDepth
	}
	st := NewWithHistory(depth)
	st.follower.Store(true)
	return st
}

// ReadOnly reports whether the store is an unpromoted follower.
func (st *Store) ReadOnly() bool { return st.follower.Load() }

// Promote makes a follower store writable. The replication layer must
// have stopped applying first: after Promote the local version chains
// are authoritative and ordinary writes extend them without a gap (the
// next commit's version is lastApplied+1, exactly as on the primary).
func (st *Store) Promote() { st.follower.Store(false) }

// SetReplPos records the replica's replay position in the primary's
// log; ReplPos reports it. Observability only — the replication layer
// owns the authoritative position.
func (st *Store) SetReplPos(pos wal.Pos) {
	p := pos
	st.repl.Store(&p)
}

// ReplPos reports the last recorded replay position, ok=false when none
// was ever set.
func (st *Store) ReplPos() (wal.Pos, bool) {
	if p := st.repl.Load(); p != nil {
		return *p, true
	}
	return wal.Pos{}, false
}

// WAL exposes a durable store's log to the replication feed service.
// It returns nil for in-memory stores (including followers).
func (st *Store) WAL() *wal.Log {
	if st.dur == nil {
		return nil
	}
	return st.dur.log
}

// HeadVersion reports the version at the head of name's chain,
// including a tombstone head (which every reader-facing path hides).
// Read-your-writes waiting needs the distinction: a client that saw
// version N is satisfied once the chain reaches N, even when N is the
// removal itself — the correct answer to its read is then not-found.
func (st *Store) HeadVersion(name string) (uint64, bool) {
	ds := st.lookup(name)
	if ds == nil {
		return 0, false
	}
	if s := ds.cur.Load(); s != nil {
		return s.version, true
	}
	return 0, false
}

// ReplayOptions configures how logged records are turned back into
// snapshots on a follower: the compiler for canonical update-query
// text, the evaluation method, and the parser depth bound. The zero
// value parses and compiles directly and evaluates with
// core.MethodTopDown — replay is method-independent (recovery's tests
// pin that), so a follower may run a different method than its primary.
type ReplayOptions struct {
	Compile  func(src string) (*core.Compiled, error)
	Method   core.Method
	MaxDepth int
}

func (o ReplayOptions) env() replayEnv {
	env := replayEnv{compile: o.Compile, method: o.Method, maxDepth: o.MaxDepth}
	if env.compile == nil {
		env.compile = func(src string) (*core.Compiled, error) {
			q, err := core.ParseQuery(src)
			if err != nil {
				return nil, err
			}
			return q.Compile()
		}
	}
	if env.method == "" || env.method == core.MethodAuto {
		// As in durable replay: method-independent, so Auto pins the
		// deterministic default.
		env.method = core.MethodTopDown
	}
	return env
}

// ApplyLogged applies one primary log record to a follower store,
// advancing the matching document's chain by exactly one version —
// puts re-parse, updates re-evaluate their canonical query text,
// removals publish tombstones. The chain is verified strictly; any
// divergence (a gap, a wrong base, an update over a tombstone) is a
// typed Corrupt error whose position names the primary's segment file
// and byte offset. Exactly one goroutine may apply at a time, and
// publication is lock-free for concurrent readers.
//
// ApplyLogged refuses durable stores: a follower replicates in memory
// and persists via its own checkpoints, never a second WAL.
func (st *Store) ApplyLogged(rec wal.Record, pos wal.Pos, o ReplayOptions) error {
	if st.dur != nil {
		return xerr.New(xerr.Eval, "", "store: ApplyLogged on a durable store (followers replicate in memory)")
	}
	return st.replayRecord(o.env(), rec, pos)
}

// CaptureAll returns the current head snapshot of every document,
// including tombstones awaiting garbage collection — the capture a
// follower checkpoint serializes. The snapshots are immutable; the
// slice is a point-in-time read of the heads, not an atomic cut
// (followers call it with the applier paused, which makes it exact).
func (st *Store) CaptureAll() []*Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Snapshot, 0, len(st.docs))
	for _, ds := range st.docs {
		if s := ds.cur.Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// ResetToLogged replaces the store's entire document set with the
// contents of a checkpoint — the follower bootstrap path, both from a
// primary checkpoint fetched over the wire and from the follower's own
// local checkpoint on restart. Tombstone entries are installed as
// tombstones: replay resuming from exactly the checkpoint's cut needs
// their versions to verify chains and license restarts. pos names the
// checkpoint in errors (a checkpoint that does not parse is corruption,
// not a crash — checkpoint publication is atomic).
//
// Readers racing the swap keep whatever snapshots they hold; the map
// swap itself is guarded by the store lock.
func (st *Store) ResetToLogged(docs []wal.CheckpointDoc, pos string, o ReplayOptions) error {
	env := o.env()
	fresh := make(map[string]*docState, len(docs))
	for _, doc := range docs {
		ds := &docState{}
		if st.histDepth > 0 {
			ds.hist = make([]atomic.Pointer[Snapshot], st.histDepth)
		}
		snap := &Snapshot{name: doc.Name, version: doc.Version}
		if !doc.Removed {
			root, err := parseLogged(doc.XML, env.maxDepth)
			if err != nil {
				return &xerr.Error{Kind: xerr.Corrupt, Pos: pos,
					Msg: fmt.Sprintf("store: checkpointed document %q does not parse", doc.Name), Err: err}
			}
			snap.root, snap.ix = root, tree.Seal(root)
		}
		ds.cur.Store(snap)
		ds.pushHist(snap)
		fresh[doc.Name] = ds
	}
	st.mu.Lock()
	st.docs = fresh
	st.mu.Unlock()
	if hook := st.hookFn(); hook != nil {
		// The whole document set changed at once; tell the hook per
		// document so change feeds can direct subscribers to resync.
		for _, ds := range fresh {
			if snap := ds.cur.Load(); snap != nil {
				hook(CommitEvent{Name: snap.name, Kind: CommitReset, Version: snap.version, Snap: snap})
			}
		}
	}
	return nil
}
