package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

func openTemp(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// docVersions renders the recoverable state of a store: per-document
// (version, canonical serialization) pairs.
func docVersions(t *testing.T, st *Store) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, name := range st.Names() {
		s, err := st.Snapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = fmt.Sprintf("%s@%d", s.Root().String(), s.Version())
	}
	return out
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	del := `transform copy $a := doc("parts") modify do delete $a//price return $a`
	ins := `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`

	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if !st.Durable() {
		t.Fatal("Open returned a non-durable store")
	}
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Apply(ctx, "parts", compile(t, del), core.MethodTopDown); err != nil {
		t.Fatal(err)
	}
	snap, _, err := st.Apply(ctx, "parts", compile(t, ins), core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 3 {
		t.Fatalf("live version = %d", snap.Version())
	}
	wantXML := snap.Root().String()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: puts re-parse, updates re-evaluate through the compile
	// callback, the chain is verified.
	compiles := 0
	st2 := openTemp(t, dir, Options{
		Compile: func(src string) (*core.Compiled, error) {
			compiles++
			q, err := core.ParseQuery(src)
			if err != nil {
				return nil, err
			}
			return q.Compile()
		},
	})
	got, err := st2.Snapshot("parts")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 3 || got.Root().String() != wantXML {
		t.Fatalf("recovered v%d %q, want v3 %q", got.Version(), got.Root().String(), wantXML)
	}
	if compiles != 2 {
		t.Fatalf("recovery compiled %d updates, want 2", compiles)
	}
	// And the recovered store keeps committing on the same chain.
	snap4, _, err := st2.Apply(ctx, "parts", compile(t, del), core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if snap4.Version() != 4 {
		t.Fatalf("post-recovery commit version = %d, want 4", snap4.Version())
	}
}

// TestDurableRecoveryMethodIndependent pins that a store written under
// one evaluation method recovers identically under another: the logical
// log records queries, not trees.
func TestDurableRecoveryMethodIndependent(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Method: core.MethodTopDown, Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	q := compile(t, `transform copy $a := doc("parts") modify do rename $a//supplier[country = "A"] as vendor return $a`)
	want, _, err := st.Apply(ctx, "parts", q, core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, m := range core.Methods() {
		st2, err := Open(dir, Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got, err := st2.Snapshot("parts")
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got.Version() != want.Version() || got.Root().String() != want.Root().String() {
			t.Fatalf("%s: recovery diverges", m)
		}
		st2.Close()
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	for i := 0; i < 5; i++ {
		if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
			t.Fatal(err)
		}
	}
	before := docVersions(t, st)

	stats, err := st.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.LastDocs != 1 || stats.LastBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The covered segment is gone; a checkpoint file exists.
	ents, _ := os.ReadDir(dir)
	var ckpts, segs int
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "ckpt-"):
			ckpts++
		case strings.HasPrefix(e.Name(), "seg-"):
			segs++
		}
	}
	if ckpts != 1 || segs != 1 {
		t.Fatalf("after checkpoint: %d checkpoints, %d segments", ckpts, segs)
	}

	// Post-checkpoint commits land in the new segment; recovery loads
	// checkpoint + tail.
	if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
		t.Fatal(err)
	}
	after := docVersions(t, st)
	st.Close()

	st2 := openTemp(t, dir, Options{})
	if got := docVersions(t, st2); got["parts"] != after["parts"] {
		t.Fatalf("recovered %v, want %v (pre-checkpoint state was %v)", got, after, before)
	}
	if snap, _ := st2.Snapshot("parts"); snap.Version() != 7 {
		t.Fatalf("recovered version = %d, want 7", snap.Version())
	}
}

// TestRemoveCheckpointReopen is the tombstone-lifecycle regression test:
// remove → checkpoint → reopen must yield notfound, with the tombstone
// garbage-collected rather than retained forever.
func TestRemoveCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("keep", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Remove("parts"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}

	stats, err := st.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TombstonesGCd != 1 || stats.LastDocs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// GC'd live too, not just on disk.
	if _, err := st.Snapshot("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("removed doc resurfaced after checkpoint")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	st.Close()

	st2 := openTemp(t, dir, Options{})
	if _, err := st2.Snapshot("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("removed doc survived checkpoint + reopen")
	}
	if _, err := st2.Snapshot("keep"); err != nil {
		t.Fatalf("surviving doc lost: %v", err)
	}
	// After checkpoint GC + reopen the name is fully forgotten: a fresh
	// Put starts a new chain at version 1, and that restart is itself
	// recoverable (the checkpoint's tombstone entry licenses it).
	snap, _, err := st2.Put("parts", parse(t, partsXML), true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 {
		t.Fatalf("post-GC re-create version = %d, want 1", snap.Version())
	}
	st2.Close()
	st3 := openTemp(t, dir, Options{})
	if snap, err := st3.Snapshot("parts"); err != nil || snap.Version() != 1 {
		t.Fatalf("restarted chain did not recover: %v, %v", snap, err)
	}
}

// TestRemoveWithoutCheckpointRecovers pins the other half of the
// lifecycle: before any checkpoint, the remove record itself must
// replay, and the re-ingest continues the chain.
func TestRemoveWithoutCheckpointRecovers(t *testing.T) {
	dir := t.TempDir()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Remove("parts"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	st.Close()

	st2 := openTemp(t, dir, Options{})
	if _, err := st2.Snapshot("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("removal did not survive recovery")
	}
	// A reopened store forgets removed documents entirely: the re-ingest
	// starts a fresh chain at version 1, logged right after the remove
	// record — the tombstone-restart shape replay must accept.
	snap, _, err := st2.Put("parts", parse(t, partsXML), true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 {
		t.Fatalf("re-create after recovered tombstone = v%d, want v1", snap.Version())
	}
	st2.Close()
	st3 := openTemp(t, dir, Options{})
	if snap, err := st3.Snapshot("parts"); err != nil || snap.Version() != 1 {
		t.Fatalf("in-log chain restart did not recover: %v, %v", snap, err)
	}
}

func TestSnapshotAtRingAndReconstruction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// Tiny ring so old versions fall out and must be reconstructed.
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone, HistoryDepth: 2})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	var want []string // want[i] = serialization of version i+1
	s1, _ := st.Snapshot("parts")
	want = append(want, s1.Root().String())
	ins := `transform copy $a := doc("parts") modify do insert <audit n="%d"/> into $a/db/part return $a`
	for i := 0; i < 5; i++ {
		q := compile(t, fmt.Sprintf(ins, i))
		snap, _, err := st.Apply(ctx, "parts", q, core.MethodTopDown)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, snap.Root().String())
	}

	for v := uint64(1); v <= 6; v++ {
		snap, err := st.SnapshotAt(ctx, "parts", v)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", v, err)
		}
		if snap.Version() != v || snap.Root().String() != want[v-1] {
			t.Fatalf("SnapshotAt(%d) returned version %d with wrong content", v, snap.Version())
		}
	}
	if _, err := st.SnapshotAt(ctx, "parts", 7); kindOf(t, err) != xerr.NotFound {
		t.Fatal("future version must be notfound")
	}
	if _, err := st.SnapshotAt(ctx, "parts", 0); kindOf(t, err) != xerr.NotFound {
		t.Fatal("version 0 must be notfound")
	}

	// After a checkpoint, pre-checkpoint versions are compacted away.
	if _, err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SnapshotAt(ctx, "parts", 3); kindOf(t, err) != xerr.NotFound {
		t.Fatal("compacted version must be notfound")
	}
	// In-ring versions survive the checkpoint (they are memory-resident).
	if snap, err := st.SnapshotAt(ctx, "parts", 6); err != nil || snap.Root().String() != want[5] {
		t.Fatalf("current version broken after checkpoint: %v", err)
	}

	entries, floor, err := st.History("parts")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[0].Version != 6 || !entries[0].Resident {
		t.Fatalf("history head = %+v", entries)
	}
	if floor != 5 && floor != 6 {
		// ring depth 2 keeps v5+v6 resident; the checkpoint floor is 6.
		t.Fatalf("floor = %d", floor)
	}
}

// TestSnapshotAtHotPathAllocFree pins the acceptance criterion: an
// in-ring SnapshotAt performs zero allocations and zero log reads.
func TestSnapshotAtHotPathAllocFree(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	for i := 0; i < 4; i++ {
		if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the log files out from under the store: if the ring path
	// touched the log at all, these lookups would fail loudly.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	for _, s := range segs {
		os.Rename(s, s+".hidden")
	}
	defer func() {
		for _, s := range segs {
			os.Rename(s+".hidden", s)
		}
	}()

	for _, v := range []uint64{2, 3, 4, 5} {
		v := v
		if got := testing.AllocsPerRun(200, func() {
			snap, err := st.SnapshotAt(ctx, "parts", v)
			if err != nil || snap.Version() != v {
				panic("ring miss on a resident version")
			}
		}); got > 0 {
			t.Errorf("SnapshotAt(%d) allocates %.1f per run, want 0", v, got)
		}
	}
}

func TestCorruptMidLogIsTyped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the version field of the update record by editing the log:
	// decode, re-encode with a gap, leaving checksums valid — recovery
	// must reject the broken chain, positioned at the record.
	seg := filepath.Join(dir, "seg-0000000000000001.wal")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	rec1, n, err := wal.DecodeRecord(b, "t")
	if err != nil {
		t.Fatal(err)
	}
	rec2, _, err := wal.DecodeRecord(b[n:], "t")
	if err != nil {
		t.Fatal(err)
	}
	rec2.Base, rec2.Version = 7, 8 // gap
	out := wal.AppendRecord(nil, &rec1)
	out = wal.AppendRecord(out, &rec2)
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	if kindOf(t, err) != xerr.Corrupt {
		t.Fatalf("broken chain recovered as %v, want corrupt", err)
	}
	var xe *xerr.Error
	if !errors.As(err, &xe) || !strings.Contains(xe.Pos, "seg-") {
		t.Fatalf("corrupt error position = %q", xe.Pos)
	}
}

func TestDurableApplyAtConflictStillTyped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	if _, _, err := st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, 1); kindOf(t, err) != xerr.Conflict {
		t.Fatal("stale durable ApplyAt must conflict")
	}
	// The failed CAS appended nothing: recovery lands on version 2.
	st.Close()
	st2 := openTemp(t, dir, Options{})
	if snap, _ := st2.Snapshot("parts"); snap.Version() != 2 {
		t.Fatalf("recovered version = %d, want 2", snap.Version())
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone, CheckpointEvery: 1})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	deadline := make(chan struct{})
	go func() {
		for i := 0; i < 40; i++ {
			if st.CheckpointStats().Checkpoints > 0 {
				break
			}
			if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		close(deadline)
	}()
	<-deadline
	if st.CheckpointStats().Checkpoints == 0 {
		t.Fatal("background checkpointer never fired")
	}
}

// TestReconstructRestartedChain pins the time-travel path across a
// chain restart: after checkpoint → remove → reopen → re-ingest, the
// new chain's early versions must be reconstructable from the log even
// though the latest checkpoint still records the old chain at a higher
// version.
func TestReconstructRestartedChain(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTemp(t, dir, Options{Fsync: wal.FsyncNone, HistoryDepth: 2})
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)
	for i := 0; i < 4; i++ { // old chain to v5
		if _, _, err := st.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Remove("parts"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	st.Close()

	st2 := openTemp(t, dir, Options{Fsync: wal.FsyncNone, HistoryDepth: 2})
	snap, _, err := st2.Put("parts", parse(t, partsXML), true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 {
		t.Fatalf("restart version = %d", snap.Version())
	}
	v1XML := snap.Root().String()
	for i := 0; i < 4; i++ { // push v1 out of the depth-2 ring
		if _, _, err := st2.Apply(ctx, "parts", ins, core.MethodTopDown); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st2.SnapshotAt(ctx, "parts", 1)
	if err != nil {
		t.Fatalf("SnapshotAt(1) on restarted chain: %v", err)
	}
	if got.Version() != 1 || got.Root().String() != v1XML {
		t.Fatal("reconstructed restart version diverges")
	}
	// The dead chain's versions beyond the new head stay unreachable.
	if _, err := st2.SnapshotAt(ctx, "parts", 9); kindOf(t, err) != xerr.NotFound {
		t.Fatal("dead-chain version must be notfound")
	}
}
