package store

import (
	"bytes"
	"context"
	"testing"

	"xtq/internal/core"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

func putRec(t *testing.T, name string, version uint64, xml string) wal.Record {
	t.Helper()
	return wal.Record{Kind: wal.KindPut, Name: name, Version: version, Doc: []byte(xml)}
}

func TestFollowerRejectsWritesUntilPromoted(t *testing.T) {
	st := NewFollower(0)
	if !st.ReadOnly() {
		t.Fatal("NewFollower store is not read-only")
	}
	if _, _, err := st.Put("d", parse(t, partsXML), true); kindOf(t, err) != xerr.Conflict {
		t.Fatalf("follower Put error = %v, want Conflict", err)
	}
	if _, err := st.Remove("d"); kindOf(t, err) != xerr.Conflict {
		t.Fatal("follower Remove must be Conflict")
	}

	// Replication still advances the store.
	if err := st.ApplyLogged(putRec(t, "d", 1, partsXML), wal.Pos{Seq: 1}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	c := compile(t, `transform copy $a := doc("d") modify do delete $a//price return $a`)
	if _, _, err := st.Apply(context.Background(), "d", c, core.MethodTopDown); kindOf(t, err) != xerr.Conflict {
		t.Fatal("follower Apply must be Conflict")
	}

	st.Promote()
	if st.ReadOnly() {
		t.Fatal("promoted store still read-only")
	}
	snap, _, err := st.Apply(context.Background(), "d", c, core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	// The chain continues from the replicated version — no gap, no reset.
	if snap.Version() != 2 {
		t.Fatalf("post-promotion commit version = %d, want 2", snap.Version())
	}
}

func TestApplyLoggedVerifiesChains(t *testing.T) {
	st := NewFollower(0)
	opts := ReplayOptions{}
	apply := func(rec wal.Record) error {
		return st.ApplyLogged(rec, wal.Pos{Seq: 3, Offset: 77}, opts)
	}

	if err := apply(putRec(t, "d", 1, partsXML)); err != nil {
		t.Fatal(err)
	}
	upd := wal.Record{Kind: wal.KindUpdate, Name: "d", Base: 1, Version: 2,
		Query: `transform copy $a := doc("d") modify do delete $a//supplier return $a`}
	if err := apply(upd); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot("d")
	if err != nil || snap.Version() != 2 {
		t.Fatalf("replicated head = %v, %v", snap, err)
	}
	var got bytes.Buffer
	if err := snap.WriteXML(&got); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got.Bytes(), []byte("supplier")) {
		t.Fatal("replayed update did not take effect")
	}

	// A version gap is divergence: typed Corrupt naming segment:offset.
	gap := wal.Record{Kind: wal.KindUpdate, Name: "d", Base: 5, Version: 6, Query: upd.Query}
	err = apply(gap)
	if kindOf(t, err) != xerr.Corrupt {
		t.Fatalf("chain gap error = %v, want Corrupt", err)
	}
	var xe *xerr.Error
	if !asXerr(err, &xe) || xe.Pos != (wal.Pos{Seq: 3, Offset: 77}).String() {
		t.Fatalf("divergence position = %v, want seg 3 offset 77", err)
	}

	// Remove then chain-restart put at version 1 is the one legal reset.
	if err := apply(wal.Record{Kind: wal.KindRemove, Name: "d", Version: 3}); err != nil {
		t.Fatal(err)
	}
	if err := apply(putRec(t, "d", 1, `<db/>`)); err != nil {
		t.Fatal(err)
	}
	if snap, err := st.Snapshot("d"); err != nil || snap.Version() != 1 {
		t.Fatalf("restarted chain head = %v, %v", snap, err)
	}
}

func asXerr(err error, xe **xerr.Error) bool {
	e, ok := err.(*xerr.Error)
	if ok {
		*xe = e
	}
	return ok
}

func TestApplyLoggedRefusesDurableStores(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Fsync: wal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.ApplyLogged(putRec(t, "d", 1, partsXML), wal.Pos{}, ReplayOptions{}); err == nil {
		t.Fatal("ApplyLogged on a durable store must fail")
	}
}

func TestCaptureAllAndResetToLoggedRoundTrip(t *testing.T) {
	src := NewFollower(0)
	if err := src.ApplyLogged(putRec(t, "a", 1, partsXML), wal.Pos{Seq: 1}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := src.ApplyLogged(putRec(t, "b", 1, `<b><x/></b>`), wal.Pos{Seq: 1}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := src.ApplyLogged(wal.Record{Kind: wal.KindRemove, Name: "b", Version: 2}, wal.Pos{Seq: 1}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}

	caps := src.CaptureAll()
	if len(caps) != 2 {
		t.Fatalf("CaptureAll = %d snapshots, want 2 (live + tombstone)", len(caps))
	}
	var docs []wal.CheckpointDoc
	for _, s := range caps {
		d := wal.CheckpointDoc{Name: s.Name(), Version: s.Version(), Removed: s.Deleted()}
		if !s.Deleted() {
			var buf bytes.Buffer
			if err := s.WriteXML(&buf); err != nil {
				t.Fatal(err)
			}
			d.XML = buf.Bytes()
		}
		docs = append(docs, d)
	}

	dst := NewFollower(0)
	if err := dst.ResetToLogged(docs, "ckpt-test", ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 1 {
		t.Fatalf("restored store Len = %d, want 1 (tombstone hidden)", dst.Len())
	}
	snap, err := dst.Snapshot("a")
	if err != nil || snap.Version() != 1 {
		t.Fatalf("restored a = %v, %v", snap, err)
	}
	if _, err := dst.Snapshot("b"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("restored tombstone must read as not-found")
	}
	// The tombstone still licenses only the legal transitions: replay
	// resuming after the cut can re-ingest b by continuing its chain.
	if err := dst.ApplyLogged(putRec(t, "b", 3, `<b/>`), wal.Pos{Seq: 2}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if snap, err := dst.Snapshot("b"); err != nil || snap.Version() != 3 {
		t.Fatalf("re-ingested b = %v, %v", snap, err)
	}

	// Garbage bytes in a fetched checkpoint are corruption, typed.
	bad := []wal.CheckpointDoc{{Name: "z", Version: 1, XML: []byte("<not..closed")}}
	if err := dst.ResetToLogged(bad, "ckpt-bad", ReplayOptions{}); kindOf(t, err) != xerr.Corrupt {
		t.Fatalf("garbled checkpoint error = %v, want Corrupt", err)
	}
}

func TestReplPosRoundTrip(t *testing.T) {
	st := NewFollower(0)
	if _, ok := st.ReplPos(); ok {
		t.Fatal("fresh follower reports a replay position")
	}
	st.SetReplPos(wal.Pos{Seq: 4, Offset: 99})
	pos, ok := st.ReplPos()
	if !ok || pos.Seq != 4 || pos.Offset != 99 {
		t.Fatalf("ReplPos = %v %v", pos, ok)
	}
}
