package store

import (
	"time"

	"xtq/internal/obs"
)

// Store instruments on the process-wide obs registry. Commit latency is
// labeled by commit kind (put, update, remove); the copy counters are
// the running copy-on-write cost of the whole store — the same numbers
// each Commit value reports per write, summed for dashboards.
var (
	mCommitSeconds = obs.Default.HistogramVec("xtq_store_commit_seconds",
		"Commit latency by kind (put, update, remove), including evaluation and WAL append.", "kind")
	mCopiedNodes = obs.Default.Counter("xtq_store_commit_copied_nodes_total",
		"Nodes copied by commits (path-copy spines plus inserted content).")
	mCopiedBytes = obs.Default.Counter("xtq_store_commit_copied_bytes_total",
		"Heap bytes retained by nodes and chunks commits copied.")
	mCopiedChunks = obs.Default.Counter("xtq_store_commit_copied_chunks_total",
		"Column chunks commits allocated or rewrote.")
	mSharedChunks = obs.Default.Counter("xtq_store_commit_shared_chunks_total",
		"Column chunks commits aliased from the previous version.")
	mCASRetries = obs.Default.Counter("xtq_store_cas_retries_total",
		"Optimistic commits that lost the publishing CAS and re-evaluated.")
	mCheckpointSeconds = obs.Default.Histogram("xtq_store_checkpoint_seconds",
		"Checkpoint duration (capture, serialize, publish, GC).")
)

// observeCommit records one successful commit on the registry.
func observeCommit(kind string, elapsed time.Duration, com Commit) {
	mCommitSeconds.With(kind).Observe(elapsed)
	if com.CopiedNodes > 0 {
		mCopiedNodes.Add(uint64(com.CopiedNodes))
	}
	if com.CopiedBytes > 0 {
		mCopiedBytes.Add(uint64(com.CopiedBytes))
	}
	if com.CopiedChunks > 0 {
		mCopiedChunks.Add(uint64(com.CopiedChunks))
	}
	if com.SharedChunks > 0 {
		mSharedChunks.Add(uint64(com.SharedChunks))
	}
}
