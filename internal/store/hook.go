package store

import (
	"xtq/internal/core"
	"xtq/internal/tree"
)

// CommitKind classifies a CommitEvent.
type CommitKind uint8

const (
	// CommitPut is a full (re-)ingest of a document.
	CommitPut CommitKind = iota
	// CommitUpdate is a committed update query.
	CommitUpdate
	// CommitRemove is a committed removal (a tombstone version).
	CommitRemove
	// CommitReset is a wholesale state replacement — the follower
	// bootstrap path (ResetToLogged). Subscribers must resynchronize:
	// intermediate versions may have been skipped.
	CommitReset
)

// String returns the kind name, for diagnostics.
func (k CommitKind) String() string {
	switch k {
	case CommitPut:
		return "put"
	case CommitUpdate:
		return "update"
	case CommitRemove:
		return "remove"
	case CommitReset:
		return "reset"
	default:
		return "invalid"
	}
}

// CommitEvent describes one committed version change, delivered to the
// store's commit hook after the new snapshot is published. Events for
// one document are delivered in version order from under the
// document's writer lock, so the hook must be fast on its unaffected
// paths — it runs inside the commit.
type CommitEvent struct {
	Name string
	Kind CommitKind
	// Version is the committed version, Prev the one before it (0 when
	// Kind is CommitPut creating the document, or CommitReset).
	Version uint64
	Prev    uint64
	// Snap is the published snapshot (a tombstone for CommitRemove);
	// PrevSnap the superseded one, nil when there was none.
	Snap     *Snapshot
	PrevSnap *Snapshot
	// Update is the compiled update query of a CommitUpdate.
	Update *core.Compiled
	// Bridge is the update evaluator's output before snapshot adoption
	// (CommitUpdate only, nil for no-ops): a tree of exactly Snap's
	// shape whose unchanged subtrees are PrevSnap's node pointers —
	// the correspondence incremental view maintenance keys on.
	Bridge *tree.Node
	// NoOp marks an update that matched nothing: Snap shares
	// PrevSnap's whole tree.
	NoOp bool
}

// SetCommitHook installs fn as the store's commit hook; nil removes
// it. The hook is invoked synchronously after every committed version
// change (puts, updates, removals, replica replays and resets), in
// version order per document. Install the hook before accepting
// writes: in-memory stores only serialize their publish path through
// the per-document writer lock while a hook is present.
func (st *Store) SetCommitHook(fn func(CommitEvent)) {
	if fn == nil {
		st.hook.Store(nil)
		return
	}
	st.hook.Store(&fn)
}

// hookFn returns the installed commit hook, or nil.
func (st *Store) hookFn() func(CommitEvent) {
	if p := st.hook.Load(); p != nil {
		return *p
	}
	return nil
}
