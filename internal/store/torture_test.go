package store

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/wal"
	"xtq/internal/xmark"
)

// oracleDoc is the sequential-replay oracle's view of one document.
type oracleDoc struct {
	version uint64
	root    *tree.Node // nil after a remove
}

// oracleReplay is the independent recovery oracle: it replays the
// records of a WAL directory strictly sequentially on plain trees —
// no store, no snapshots, no rings — asserting the version chain is
// gapless as it goes. Recovery correctness is pinned by comparing the
// reopened store's per-document (version, canonical serialization)
// pairs against this.
func oracleReplay(t *testing.T, dir string) map[string]oracleDoc {
	t.Helper()
	ctx := context.Background()
	docs := make(map[string]oracleDoc)
	err := wal.ReplaySegments(dir, 0, func(rec wal.Record, pos wal.Pos) error {
		d, ok := docs[rec.Name]
		switch rec.Kind {
		case wal.KindPut:
			if ok && rec.Version != d.version+1 {
				t.Fatalf("oracle: put gap at %s: %d -> %d", pos, d.version, rec.Version)
			}
			if !ok && rec.Version != 1 {
				t.Fatalf("oracle: first put of %q at version %d", rec.Name, rec.Version)
			}
			root, err := sax.Parse(bytes.NewReader(rec.Doc))
			if err != nil {
				t.Fatalf("oracle: put does not parse: %v", err)
			}
			docs[rec.Name] = oracleDoc{rec.Version, root}
		case wal.KindUpdate:
			if !ok || d.root == nil || rec.Base != d.version || rec.Version != d.version+1 {
				t.Fatalf("oracle: update chain broken at %s", pos)
			}
			c, err := core.MustParseQuery(rec.Query).Compile()
			if err != nil {
				t.Fatalf("oracle: logged query does not compile: %v", err)
			}
			out, err := c.EvalContext(ctx, d.root, core.MethodTopDown)
			if err != nil {
				t.Fatalf("oracle: replay eval: %v", err)
			}
			docs[rec.Name] = oracleDoc{rec.Version, out}
		case wal.KindRemove:
			if !ok || rec.Version != d.version+1 {
				t.Fatalf("oracle: remove chain broken at %s", pos)
			}
			docs[rec.Name] = oracleDoc{rec.Version, nil}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	return docs
}

// TestCrashRecoveryTorture is the durability acceptance test: a writer
// applies a random XQU update sequence (with a removal and a re-ingest
// mixed in) to a durable store while the test concurrently snapshots
// the WAL file at arbitrary byte prefixes — the states a crash could
// leave on disk. Reopening every prefix must recover exactly the state
// the sequential-replay oracle derives from that prefix: same
// documents, same versions, same canonical serializations. Run under
// -race in CI.
func TestCrashRecoveryTorture(t *testing.T) {
	const updates = 36
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	base, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := randomUpdates(t, rng, updates)

	st, err := Open(dir, Options{Fsync: wal.FsyncNone, SegmentBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	seg := filepath.Join(dir, "seg-0000000000000001.wal")
	prefixes := make(map[int][]byte)
	var (
		mu   sync.Mutex
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	// Sampler: capture the log bytes as they grow. Every captured length
	// is a state a kill -9 could have left behind.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b, err := os.ReadFile(seg); err == nil {
				mu.Lock()
				prefixes[len(b)] = b
				mu.Unlock()
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	ctx := context.Background()
	if _, _, err := st.Put("d", base, true); err != nil {
		t.Fatal(err)
	}
	for i, c := range seq {
		if _, _, err := st.Apply(ctx, "d", c, core.MethodTopDown); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		// Pace the writer so the sampler interleaves with the commit
		// sequence instead of seeing only the final file.
		time.Sleep(time.Millisecond)
		switch i {
		case updates / 3:
			// A removal and a re-ingest mid-sequence: tombstone records
			// and chain continuation are part of the torture.
			if ok, err := st.Remove("d"); err != nil || !ok {
				t.Fatalf("Remove = %v, %v", ok, err)
			}
			if _, _, err := st.Put("d", base.DeepCopy(), true); err != nil {
				t.Fatal(err)
			}
		case updates / 2:
			if _, _, err := st.Put("aux", base.DeepCopy(), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The full file and adversarial cuts around the tail of every
	// sampled prefix join the corpus: mid-frame cuts must truncate
	// cleanly, never corrupt or panic.
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	prefixes[len(whole)] = whole
	mu.Lock()
	lens := make([]int, 0, len(prefixes))
	for n := range prefixes {
		lens = append(lens, n)
	}
	mu.Unlock()
	for _, n := range lens {
		for _, cut := range []int{1, 3, 9} {
			if n-cut > 0 {
				prefixes[n-cut] = whole[:n-cut]
			}
		}
	}

	if len(prefixes) < 10 {
		t.Fatalf("only %d prefixes sampled; the sampler never interleaved", len(prefixes))
	}
	// Bound the reopen work (every verification replays a full prefix):
	// keep an evenly-spaced subset when sampling was dense.
	const maxVerified = 60
	if len(prefixes) > maxVerified {
		lens = lens[:0]
		for n := range prefixes {
			lens = append(lens, n)
		}
		sort.Ints(lens)
		kept := make(map[int][]byte, maxVerified)
		for i := 0; i < maxVerified; i++ {
			n := lens[i*len(lens)/maxVerified]
			kept[n] = prefixes[n]
		}
		kept[len(whole)] = whole
		prefixes = kept
	}

	for n, b := range prefixes {
		pdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(pdir, "seg-0000000000000001.wal"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		oracle := oracleReplay(t, pdir)

		re, err := Open(pdir, Options{})
		if err != nil {
			t.Fatalf("prefix %d bytes: reopen failed: %v", n, err)
		}
		live := 0
		for name, want := range oracle {
			snap, err := re.Snapshot(name)
			if want.root == nil {
				if err == nil {
					t.Fatalf("prefix %d: %q should be removed, recovered v%d", n, name, snap.Version())
				}
				continue
			}
			live++
			if err != nil {
				t.Fatalf("prefix %d: %q lost: %v", n, name, err)
			}
			if snap.Version() != want.version {
				t.Fatalf("prefix %d: %q recovered v%d, oracle v%d", n, name, snap.Version(), want.version)
			}
			if snap.Root().String() != want.root.String() {
				t.Fatalf("prefix %d: %q v%d content diverges from oracle", n, name, want.version)
			}
		}
		if got := re.Len(); got != live {
			t.Fatalf("prefix %d: store has %d documents, oracle %d", n, got, live)
		}
		re.Close()
	}
}
