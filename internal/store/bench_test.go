package store

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"xtq/internal/core"
	"xtq/internal/xmark"
)

func benchDoc(b *testing.B) *Store {
	b.Helper()
	doc, err := xmark.Generate(xmark.Config{Factor: 0.01, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	st := New()
	if _, _, err := st.Put("d", doc, true); err != nil {
		b.Fatal(err)
	}
	return st
}

func benchCompile(b *testing.B, src string) *core.Compiled {
	b.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		b.Fatal(err)
	}
	return c
}

const benchRead = `transform copy $a := doc("d") modify do delete $a/site/people/person[@id = "person10"] return $a`
const benchWrite = `transform copy $a := doc("d") modify do insert <audit/> into $a/site/people/person return $a`

// BenchmarkSnapshotRead is the store's read hot path: snapshot lookup
// plus one prepared evaluation, single goroutine. Compare with
// BenchmarkPlainEval — the acceptance bar is within 10%.
func BenchmarkSnapshotRead(b *testing.B) {
	st := benchDoc(b)
	c := benchCompile(b, benchRead)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := st.Snapshot("d")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.EvalContext(ctx, snap.Root(), core.MethodTopDown); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlainEval is the baseline: the same evaluation over the same
// document held as a plain tree outside any store.
func BenchmarkPlainEval(b *testing.B) {
	doc, err := xmark.Generate(xmark.Config{Factor: 0.01, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	c := benchCompile(b, benchRead)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvalContext(ctx, doc, core.MethodTopDown); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReaders8Writer1 is the serving shape: 8 concurrent
// readers evaluating over snapshots while one writer commits updates.
// b.N counts reads; the writer commits continuously in the background.
func BenchmarkStoreReaders8Writer1(b *testing.B) {
	st := benchDoc(b)
	read := benchCompile(b, benchRead)
	write := benchCompile(b, benchWrite)
	ctx := context.Background()

	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := st.Apply(ctx, "d", write, core.MethodTopDown); err != nil {
				panic(err)
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			snap, err := st.Snapshot("d")
			if err != nil {
				panic(err)
			}
			if _, err := read.EvalContext(ctx, snap.Root(), core.MethodTopDown); err != nil {
				panic(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	writerDone.Wait()
}

// BenchmarkStoreCommit measures one copy-on-write commit: evaluate the
// update over the current snapshot, snapshot-copy the result, publish.
func BenchmarkStoreCommit(b *testing.B) {
	st := benchDoc(b)
	write := benchCompile(b, benchWrite)
	ctx := context.Background()
	var copied atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, com, err := st.Apply(ctx, "d", write, core.MethodTopDown)
		if err != nil {
			b.Fatal(err)
		}
		copied.Add(com.CopiedBytes)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(copied.Load())/float64(b.N), "copied-B/op")
	}
}
