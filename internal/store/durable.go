package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

// Options configures a durable store opened with Open.
type Options struct {
	// Compile turns canonical update-query text back into a compiled
	// query during recovery and time-travel reconstruction. The facade
	// passes the engine's cache-backed Prepare; the default parses and
	// compiles directly.
	Compile func(src string) (*core.Compiled, error)
	// Method is the evaluation method replayed updates run under.
	// Default core.MethodTopDown. Any method recovers the same document
	// (the evaluators agree; the store's tests pin it), so a store may be
	// reopened under a different method than wrote it.
	Method core.Method
	// MaxDepth bounds element nesting when recovery re-parses logged
	// documents; 0 means no limit.
	MaxDepth int

	// Fsync is the commit durability policy (see wal.FsyncPolicy).
	// Default wal.FsyncAlways.
	Fsync wal.FsyncPolicy
	// SyncEvery is the wal.FsyncInterval period. Default 25ms.
	SyncEvery time.Duration
	// SegmentBytes rotates log segments at this size. Default 64 MiB.
	SegmentBytes int64

	// HistoryDepth is the per-document snapshot ring size (SnapshotAt's
	// lock-free window). Negative disables the ring; 0 means
	// DefaultHistoryDepth.
	HistoryDepth int
	// CheckpointEvery triggers a background checkpoint after this many
	// bytes of new log; 0 leaves checkpointing to explicit Checkpoint
	// calls.
	CheckpointEvery int64
}

func (o Options) withDefaults() Options {
	if o.Compile == nil {
		o.Compile = func(src string) (*core.Compiled, error) {
			q, err := core.ParseQuery(src)
			if err != nil {
				return nil, err
			}
			return q.Compile()
		}
	}
	if o.Method == "" || o.Method == core.MethodAuto {
		// Replay is method-independent (every method yields the same
		// result), so Auto pins the deterministic default rather than
		// re-planning over replay trees that carry no statistics.
		o.Method = core.MethodTopDown
	}
	switch {
	case o.HistoryDepth < 0:
		o.HistoryDepth = 0
	case o.HistoryDepth == 0:
		o.HistoryDepth = DefaultHistoryDepth
	}
	return o
}

// CheckpointStats reports the work of the checkpoint/compaction layer
// since the store was opened.
type CheckpointStats struct {
	// Checkpoints completed (manual and background).
	Checkpoints int
	// LastSeq is the segment cut of the newest checkpoint: every record
	// in segments ≤ LastSeq is captured by it.
	LastSeq uint64
	// LastDocs and LastBytes are the newest checkpoint's document count
	// and serialized volume.
	LastDocs  int
	LastBytes int64
	// LastDuration is the wall time of the newest checkpoint.
	LastDuration time.Duration
	// SegmentsRemoved and TombstonesGCd accumulate compaction work:
	// fully-covered segments deleted and removed documents finally
	// forgotten.
	SegmentsRemoved int
	TombstonesGCd   int
	// LogBytes is the cumulative log volume appended since Open.
	LogBytes int64
}

// durable is the WAL binding of a Store opened with Open.
type durable struct {
	log  *wal.Log
	opts Options

	// gate closes the append→publish window during checkpoint rotation:
	// commits hold it for read from WAL append to CAS publish, rotation
	// holds it for write, so every record in a frozen segment is
	// published — and therefore captured — before the segment can be
	// declared covered.
	gate sync.RWMutex

	// ckptMu serializes checkpoints and time-travel reconstruction
	// (which must not race segment deletion).
	ckptMu sync.Mutex

	mu        sync.Mutex
	floor     map[string]uint64 // oldest log-reconstructable version per doc
	stats     CheckpointStats
	lastSize  int64 // log size at the last checkpoint (growth trigger)
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Open opens (creating if necessary) a durable store rooted at dir: a
// write-ahead log of logical update records plus snapshot checkpoints.
// Recovery loads the newest checkpoint, then replays every later log
// record through the same engine paths that executed it live — puts
// re-parse, updates re-evaluate their canonical query text, removals
// re-publish tombstones — verifying the version chain as it goes.
// Corruption surfaces as a typed xerr.Corrupt error naming the segment
// file and byte offset.
//
// After Open returns, every successful Put/Apply/ApplyAt/Remove appends
// its logical record (honouring Options.Fsync) before publishing, so the
// store's committed state always survives a process kill and — under
// FsyncAlways — an OS crash. Close the store to stop the background
// checkpointer and sync the log.
func Open(dir string, o Options) (*Store, error) {
	o = o.withDefaults()

	ck, err := wal.ReadLatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(dir, wal.Options{
		Fsync:        o.Fsync,
		SyncEvery:    o.SyncEvery,
		SegmentBytes: o.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}

	st := NewWithHistory(o.HistoryDepth)
	d := &durable{opts: o, floor: make(map[string]uint64)}

	var afterSeq uint64
	if ck != nil {
		afterSeq = ck.Seq
		d.stats.LastSeq = ck.Seq
		for _, doc := range ck.Docs {
			if doc.Removed {
				// A tombstone the checkpoint retained (its GC did not
				// complete, or a writer held it): recovered as a tombstone
				// so the chain stays verifiable.
				st.recoverPublish(doc.Name, doc.Version, nil)
				continue
			}
			root, err := parseLogged(doc.XML, o.MaxDepth)
			if err != nil {
				log.Close()
				return nil, &xerr.Error{Kind: xerr.Corrupt, Pos: fmt.Sprintf("ckpt-%d:%s", ck.Seq, doc.Name),
					Msg: "store: checkpointed document does not parse", Err: err}
			}
			st.recoverPublish(doc.Name, doc.Version, root)
			d.floor[doc.Name] = doc.Version
		}
	}
	env := replayEnv{
		compile:  o.Compile,
		method:   o.Method,
		maxDepth: o.MaxDepth,
		noteFloor: func(name string, version uint64) {
			d.mu.Lock()
			if _, ok := d.floor[name]; !ok || version == 1 {
				d.floor[name] = version
			}
			d.mu.Unlock()
		},
	}
	if err := log.Replay(afterSeq, func(rec wal.Record, pos wal.Pos) error {
		return st.replayRecord(env, rec, pos)
	}); err != nil {
		log.Close()
		return nil, err
	}

	// Recovery is the other place tombstones die: they were needed
	// during replay to verify the chains (and to license restarts), but
	// a reopened store forgets removed documents entirely — the log
	// still records the removal, and a future re-ingest starts a fresh
	// chain at version 1, which replay accepts as the tombstone-restart
	// case.
	for name, ds := range st.docs {
		if s := ds.cur.Load(); s != nil && s.deleted() {
			delete(st.docs, name)
			delete(d.floor, name)
		}
	}

	d.log = log
	d.lastSize = log.Size()
	st.dur = d
	if o.CheckpointEvery > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.checkpointLoop(st)
	}
	return st, nil
}

// Durable reports whether the store is backed by a write-ahead log.
func (st *Store) Durable() bool { return st.dur != nil }

// Close stops the background checkpointer and syncs and closes the log.
// In-memory stores return nil. Commits issued after Close fail.
func (st *Store) Close() error {
	d := st.dur
	if d == nil {
		return nil
	}
	var err error
	d.closeOnce.Do(func() {
		if d.stop != nil {
			close(d.stop)
			<-d.done
		}
		err = d.log.Close()
	})
	return err
}

// parseLogged parses document bytes from the log or a checkpoint.
func parseLogged(xml []byte, maxDepth int) (*tree.Node, error) {
	var tb sax.TreeBuilder
	p := sax.NewParserOptions(bytes.NewReader(xml), &tb, sax.Options{MaxDepth: maxDepth})
	if err := p.Parse(); err != nil {
		return nil, err
	}
	return tb.Document(), nil
}

// recoverPublish installs root as the snapshot of name at exactly
// version, returning the published snapshot. Recovery is
// single-goroutine: no CAS, no logging.
func (st *Store) recoverPublish(name string, version uint64, root *tree.Node) *Snapshot {
	ds := st.state(name)
	snap := &Snapshot{name: name, version: version}
	if root != nil {
		snap.root = root
		snap.ix = tree.Seal(root)
	}
	ds.cur.Store(snap)
	ds.pushHist(snap)
	return snap
}

// replayEnv is what replaying one log record needs from its caller —
// shared by crash recovery (Open, which also tracks reconstruction
// floors) and the replication applier (ApplyLogged, which does not).
type replayEnv struct {
	compile  func(src string) (*core.Compiled, error)
	method   core.Method
	maxDepth int
	// noteFloor, when non-nil, is told about every replayed put so the
	// caller can maintain per-document reconstruction floors.
	noteFloor func(name string, version uint64)
}

// replayRecord applies one surviving log record to the recovering
// store, verifying the version chain strictly: because checkpoints
// capture state at exactly their segment cut (under the commit gate),
// no record is ever legitimately re-delivered, so every record must
// extend its document's chain by exactly one — with a single exception,
// the chain restart: a put at version 1 over a known tombstone, which
// only a completed tombstone garbage collection can produce. Anything
// else out of sequence is corruption, positioned at the record's
// segment and offset.
//
// The caller is the only goroutine advancing the store (recovery runs
// before Open returns; a follower has one applier). Publication is a
// plain atomic store, so concurrent lock-free readers are safe.
func (st *Store) replayRecord(env replayEnv, rec wal.Record, pos wal.Pos) error {
	chain := func(format string, args ...any) error {
		return xerr.New(xerr.Corrupt, pos.String(), "store: "+format, args...)
	}
	ds := st.lookup(rec.Name)
	var cur *Snapshot
	var curV uint64
	if ds != nil {
		cur = ds.cur.Load()
	}
	if cur != nil {
		curV = cur.version
	}
	switch rec.Kind {
	case wal.KindPut:
		switch {
		case cur == nil:
			if rec.Version != 1 {
				return chain("put creates %q at version %d, want 1", rec.Name, rec.Version)
			}
		case cur.deleted() && rec.Version == 1:
			// Chain restart after a garbage-collected removal: the old
			// chain's retained history is dead — clear the ring so stale
			// slots cannot shadow the new chain's versions.
			for i := range ds.hist {
				ds.hist[i].Store(nil)
			}
		case rec.Version != curV+1:
			return chain("put of %q jumps version %d → %d", rec.Name, curV, rec.Version)
		}
		root, err := parseLogged(rec.Doc, env.maxDepth)
		if err != nil {
			return &xerr.Error{Kind: xerr.Corrupt, Pos: pos.String(),
				Msg: fmt.Sprintf("store: logged document %q does not parse", rec.Name), Err: err}
		}
		snap := st.recoverPublish(rec.Name, rec.Version, root)
		if env.noteFloor != nil {
			env.noteFloor(rec.Name, rec.Version)
		}
		if hook := st.hookFn(); hook != nil {
			hook(CommitEvent{Name: rec.Name, Kind: CommitPut, Version: rec.Version, Prev: curV, Snap: snap, PrevSnap: cur})
		}
	case wal.KindUpdate:
		if cur == nil {
			return chain("update of unknown document %q", rec.Name)
		}
		if cur.deleted() {
			return chain("update of %q at version %d follows its removal", rec.Name, rec.Version)
		}
		if rec.Base != curV || rec.Version != curV+1 {
			return chain("update of %q has base %d over current %d", rec.Name, rec.Base, curV)
		}
		c, err := env.compile(rec.Query)
		if err != nil {
			return &xerr.Error{Kind: xerr.Corrupt, Pos: pos.String(),
				Msg: fmt.Sprintf("store: logged update of %q does not compile", rec.Name), Err: err}
		}
		out, err := c.EvalContext(context.Background(), cur.root, env.method)
		if err != nil {
			return &xerr.Error{Kind: xerr.Corrupt, Pos: pos.String(),
				Msg: fmt.Sprintf("store: replaying update of %q failed", rec.Name), Err: err}
		}
		next := &Snapshot{name: rec.Name, version: rec.Version}
		noop := out == cur.root
		if !noop && env.method != core.MethodTopDown && env.method != core.MethodTwoPass {
			noop = tree.Equal(out, cur.root)
		}
		if noop {
			next.root, next.ix = cur.root, cur.ix
		} else {
			next.root, next.ix, _ = tree.PathCopy(out, cur.ix)
		}
		ds.cur.Store(next)
		ds.pushHist(next)
		if hook := st.hookFn(); hook != nil {
			ev := CommitEvent{
				Name: rec.Name, Kind: CommitUpdate,
				Version: next.version, Prev: cur.version,
				Snap: next, PrevSnap: cur,
				Update: c, NoOp: noop,
			}
			if !noop {
				ev.Bridge = out
			}
			hook(ev)
		}
	case wal.KindRemove:
		if cur == nil || cur.deleted() {
			return chain("remove of %q which is not live", rec.Name)
		}
		if rec.Version != curV+1 {
			return chain("remove of %q jumps version %d → %d", rec.Name, curV, rec.Version)
		}
		snap := st.recoverPublish(rec.Name, rec.Version, nil)
		if hook := st.hookFn(); hook != nil {
			hook(CommitEvent{Name: rec.Name, Kind: CommitRemove, Version: rec.Version, Prev: curV, Snap: snap, PrevSnap: cur})
		}
	default:
		return chain("%s record in a log segment", rec.Kind)
	}
	return nil
}

// appendPut logs an ingest before it is published. isNew additionally
// seeds the reconstruction floor for a document the log creates.
func (d *durable) appendPut(name string, version uint64, root *tree.Node, isNew bool) error {
	var buf bytes.Buffer
	if err := root.WriteXML(&buf); err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	_, err := d.log.Append(&wal.Record{Kind: wal.KindPut, Name: name, Version: version, Doc: buf.Bytes()})
	if err != nil {
		return err
	}
	if isNew {
		d.mu.Lock()
		if _, ok := d.floor[name]; !ok {
			d.floor[name] = version
		}
		d.mu.Unlock()
	}
	return nil
}

// appendUpdate logs a committed update as its canonical query text —
// the logical record the paper's own syntax provides.
func (d *durable) appendUpdate(name string, base, version uint64, c *core.Compiled) error {
	_, err := d.log.Append(&wal.Record{
		Kind:    wal.KindUpdate,
		Name:    name,
		Version: version,
		Base:    base,
		Query:   c.Query.String(),
	})
	return err
}

// appendRemove logs a removal tombstone.
func (d *durable) appendRemove(name string, version uint64) error {
	_, err := d.log.Append(&wal.Record{Kind: wal.KindRemove, Name: name, Version: version})
	return err
}

func (d *durable) floorOf(name string) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.floor[name]
	return f, ok
}

// CheckpointStats reports checkpoint/compaction activity since Open.
// On an in-memory store it is all zeros.
func (st *Store) CheckpointStats() CheckpointStats {
	d := st.dur
	if d == nil {
		return CheckpointStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.LogBytes = d.log.Size()
	return s
}

// Checkpoint serializes the current snapshot of every live document
// into a checkpoint file, publishes it atomically, garbage-collects
// tombstoned documents and deletes the log segments the checkpoint
// covers. Reconstruction floors advance to the captured versions:
// versions older than the checkpoint are no longer time-travelable.
func (st *Store) Checkpoint(ctx context.Context) (CheckpointStats, error) {
	d := st.dur
	if d == nil {
		return CheckpointStats{}, xerr.New(xerr.Eval, "", "store: Checkpoint on an in-memory store (open with store.Open for durability)")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()

	// Freeze the segment cut and capture the per-document heads inside
	// the same gate-locked section. The gate flushes the append→publish
	// window (no commit straddles the rotation), and capturing before
	// releasing it makes the checkpoint exactly the state at the cut:
	// every record in segments ≤ covered is reflected, every record in
	// later segments postdates every captured version. Recovery can
	// therefore verify the version chain strictly — no record is ever
	// legitimately re-delivered. The capture itself is pointer loads, so
	// writers stall only for the rotation fsync.
	type captured struct {
		name string
		ds   *docState
		snap *Snapshot
	}
	d.gate.Lock()
	covered, err := d.log.Rotate()
	var all []captured
	if err == nil {
		st.mu.RLock()
		all = make([]captured, 0, len(st.docs))
		for name, ds := range st.docs {
			all = append(all, captured{name, ds, ds.cur.Load()})
		}
		st.mu.RUnlock()
	}
	d.gate.Unlock()
	if err != nil {
		return st.CheckpointStats(), err
	}

	// Stream the capture into the checkpoint file one document at a
	// time, reusing one serialization buffer: peak memory is the largest
	// document, not the corpus.
	entries := 0
	for _, c := range all {
		if c.snap != nil {
			entries++
		}
	}
	cw, err := wal.NewCheckpointWriter(d.log.Dir(), covered, uint64(entries))
	if err != nil {
		return st.CheckpointStats(), err
	}
	var (
		buf      bytes.Buffer
		bytesOut int64
		liveDocs int
		tombs    []captured
		floors   = make(map[string]uint64, len(all))
	)
	for _, c := range all {
		if err := ctx.Err(); err != nil {
			cw.Abort()
			return st.CheckpointStats(), xerr.Wrap(xerr.Eval, err)
		}
		if c.snap == nil {
			continue // created but never published; no record can reference it yet
		}
		if c.snap.deleted() {
			// Tombstones are written into the checkpoint (name + version,
			// no bytes) and garbage-collected from the live map only after
			// the checkpoint is durable: recovery then knows the removed
			// document's version, so a chain-restarting put (version 1,
			// only possible after this GC) is provably not a gap.
			tombs = append(tombs, c)
			if err := cw.Add(wal.CheckpointDoc{Name: c.name, Version: c.snap.version, Removed: true}); err != nil {
				cw.Abort()
				return st.CheckpointStats(), err
			}
			continue
		}
		buf.Reset()
		if err := c.snap.WriteXML(&buf); err != nil {
			cw.Abort()
			return st.CheckpointStats(), xerr.Wrap(xerr.IO, err)
		}
		if err := cw.Add(wal.CheckpointDoc{Name: c.name, Version: c.snap.version, XML: buf.Bytes()}); err != nil {
			cw.Abort()
			return st.CheckpointStats(), err
		}
		bytesOut += int64(buf.Len())
		liveDocs++
		floors[c.name] = c.snap.version
	}
	if err := cw.Close(); err != nil {
		return st.CheckpointStats(), err
	}

	// The checkpoint is durable: compact. Tombstoned documents are
	// finally forgotten — their docState leaves the map (a racing writer
	// revalidates under lockWriter and restarts on a fresh chain), their
	// ring with it.
	var gcdNames []string
	st.mu.Lock()
	for _, c := range tombs {
		if st.docs[c.name] != c.ds {
			continue // replaced since capture
		}
		if !c.ds.wmu.TryLock() {
			continue // a writer is mid-commit on it; the next checkpoint will collect it
		}
		if s := c.ds.cur.Load(); s != nil && s.deleted() {
			delete(st.docs, c.name)
			gcdNames = append(gcdNames, c.name)
		}
		c.ds.wmu.Unlock()
	}
	st.mu.Unlock()

	removed, err := d.log.RemoveThrough(covered)
	if err != nil {
		return st.CheckpointStats(), err
	}
	if err := wal.RemoveCheckpointsBelow(d.log.Dir(), covered); err != nil {
		return st.CheckpointStats(), err
	}

	d.mu.Lock()
	for name, v := range floors {
		d.floor[name] = v
	}
	for _, name := range gcdNames {
		delete(d.floor, name)
	}
	d.stats.Checkpoints++
	d.stats.LastSeq = covered
	d.stats.LastDocs = liveDocs
	d.stats.LastBytes = bytesOut
	d.stats.LastDuration = time.Since(start)
	mCheckpointSeconds.Observe(d.stats.LastDuration)
	d.stats.SegmentsRemoved += removed
	d.stats.TombstonesGCd += len(gcdNames)
	d.lastSize = d.log.Size()
	stats := d.stats
	stats.LogBytes = d.lastSize
	d.mu.Unlock()
	return stats, nil
}

// checkpointLoop is the background checkpointer: it fires when the log
// has grown by Options.CheckpointEvery bytes since the last checkpoint.
func (d *durable) checkpointLoop(st *Store) {
	defer close(d.done)
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.mu.Lock()
			due := d.log.Size()-d.lastSize >= d.opts.CheckpointEvery
			d.mu.Unlock()
			if due {
				// Best effort: a failed background checkpoint leaves the
				// log longer, never the store wrong; the next tick retries.
				st.Checkpoint(context.Background())
			}
		}
	}
}

// errReconstructed aborts a reconstruction scan early once the target
// version is reached.
var errReconstructed = errors.New("store: reconstruction complete")

// reconstruct rebuilds name@version by replaying the log from the last
// checkpoint — the slow half of SnapshotAt, for versions that fell out
// of the history ring. The rebuilt snapshot is private: sealed and
// evaluable like any other, but not re-inserted into the ring.
func (d *durable) reconstruct(ctx context.Context, name string, version uint64) (*Snapshot, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	compacted := func() error {
		return xerr.New(xerr.NotFound, "", "store: %q version %d predates the last checkpoint (compacted)", name, version)
	}

	ck, err := wal.ReadLatestCheckpoint(d.log.Dir())
	if err != nil {
		return nil, err
	}
	var (
		cur      *tree.Node
		curV     uint64
		exists   bool
		afterSeq uint64
		// restartable marks a tombstone state (from the checkpoint or an
		// in-log remove): a chain restart — a put at version 1, produced
		// by tombstone GC or by a reopen that dropped the tombstone — may
		// follow, sending versions back below curV. While one is
		// possible, the scan cannot exit early on curV ≥ version.
		restartable bool
	)
	if ck != nil {
		afterSeq = ck.Seq
		for _, doc := range ck.Docs {
			if doc.Name != name {
				continue
			}
			if doc.Removed {
				cur, curV, exists, restartable = nil, doc.Version, true, true
				break
			}
			// Note: doc.Version > version does NOT mean the version is
			// unservable — a post-checkpoint remove plus a chain restart
			// can make low version numbers live again. The scan decides;
			// its early exit keeps the truly-compacted case cheap.
			root, err := parseLogged(doc.XML, d.opts.MaxDepth)
			if err != nil {
				return nil, &xerr.Error{Kind: xerr.Corrupt, Pos: fmt.Sprintf("ckpt-%d:%s", ck.Seq, name),
					Msg: "store: checkpointed document does not parse", Err: err}
			}
			cur, curV, exists = root, doc.Version, true
			break
		}
	}

	// The reconstructed state is the last point the scan passes through
	// the requested version: with a chain restart the same version number
	// can occur in both the dead chain (as the tombstone) and the new
	// one, and the reachable chain wins — matching what the history ring
	// would have served.
	var (
		best        *tree.Node
		bestMatched bool
		bestRemoved bool
	)
	record := func() {
		if exists && curV == version {
			best, bestMatched, bestRemoved = cur, true, cur == nil
		}
	}
	record()

	err = wal.ReplaySegments(d.log.Dir(), afterSeq, func(rec wal.Record, pos wal.Pos) error {
		if rec.Name != name {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return xerr.Wrap(xerr.Eval, err)
		}
		switch rec.Kind {
		case wal.KindPut:
			root, err := parseLogged(rec.Doc, d.opts.MaxDepth)
			if err != nil {
				return &xerr.Error{Kind: xerr.Corrupt, Pos: pos.String(),
					Msg: fmt.Sprintf("store: logged document %q does not parse", name), Err: err}
			}
			restartable = false // a put resolves the pending restart either way
			cur, curV, exists = root, rec.Version, true
		case wal.KindUpdate:
			if !exists || cur == nil {
				return xerr.New(xerr.Corrupt, pos.String(), "store: logged update of %q over no live document", name)
			}
			c, err := d.opts.Compile(rec.Query)
			if err != nil {
				return &xerr.Error{Kind: xerr.Corrupt, Pos: pos.String(),
					Msg: fmt.Sprintf("store: logged update of %q does not compile", name), Err: err}
			}
			out, err := c.EvalContext(ctx, cur, d.opts.Method)
			if err != nil {
				return err
			}
			cur, curV = out, rec.Version
		case wal.KindRemove:
			cur, curV = nil, rec.Version
			restartable = true
		}
		record()
		if !restartable && curV >= version {
			return errReconstructed
		}
		return nil
	})
	if err != nil && !errors.Is(err, errReconstructed) {
		return nil, err
	}
	if !bestMatched {
		return nil, compacted()
	}
	if bestRemoved {
		return nil, removedAt(name, version)
	}
	root, ix, _ := tree.Freeze(best, nil)
	return &Snapshot{name: name, version: version, root: root, ix: ix}, nil
}
