// Package store implements a goroutine-safe, versioned XML document
// store — the write path that turns transform queries from a query
// device into the update mechanism of a live corpus (the dual of the
// paper's central move, and the substrate the xtqd serving layer runs
// on).
//
// Named documents are held as immutable, indexed, sealed snapshots
// (tree.Freeze / tree.Seal) backed by a structure-of-arrays core.
// Readers obtain a *Snapshot via an atomic pointer load and evaluate
// compiled queries and composition plans against it with zero locking
// on the hot path: a sealed index is served by tree.EnsureIndex without
// the package mutex, and nothing ever mutates or re-stamps a sealed
// tree. Writers commit XQU updates persistently (shared structure): the
// update's transform query is evaluated over the current snapshot
// (structural sharing, input untouched), the result is adopted into the
// next version of the chain with tree.PathCopy — copying only the spine
// from each change to the root, aliasing every untouched subtree and
// column chunk — and the new snapshot is published with a
// compare-and-swap on the per-document version chain — optimistic
// concurrency whose losers either retry (Apply) or surface a typed
// conflict error (ApplyAt).
//
// Removal is itself a committed version: Remove publishes a tombstone
// snapshot, so a commit racing with a removal loses the CAS and
// surfaces not-found instead of writing into an unreachable chain, and
// a later re-ingest continues the version chain rather than restarting
// it. Tombstones are garbage-collected by checkpointing (durable
// stores); a purely in-memory store retains them, which is the price of
// version-chain continuity.
//
// Every document keeps a small ring of recent snapshots: SnapshotAt
// serves those versions lock- and allocation-free. A store opened with
// Open (see durable.go) is additionally backed by a write-ahead log of
// logical update records, giving crash recovery, snapshot checkpoints
// and time travel to any version since the last checkpoint.
package store

import (
	"context"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xtq/internal/core"
	"xtq/internal/obs"
	"xtq/internal/plan"
	"xtq/internal/tree"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

// DefaultHistoryDepth is the per-document snapshot ring size of stores
// built without an explicit HistoryDepth.
const DefaultHistoryDepth = 8

// Snapshot is one immutable committed version of a named document.
// Snapshots are safe for unlimited concurrent readers, never change
// after publication, and remain valid (and evaluable) after newer
// versions are committed or the document is removed — a reader holding
// a handle is isolated from every later write.
type Snapshot struct {
	name    string
	version uint64
	root    *tree.Node // nil for a tombstone (the committed removal)
	ix      *tree.Index
}

// Name returns the document name the snapshot was committed under.
func (s *Snapshot) Name() string { return s.name }

// Version returns the snapshot's version: 1 for the first ingest of a
// name, incremented by every committed update, re-ingest or removal.
func (s *Snapshot) Version() uint64 { return s.version }

// Root returns the snapshot's document node. The tree is sealed: treat
// it as strictly read-only (in-place mutation is rejected by
// core.Update.Apply, and evaluators never modify their input).
func (s *Snapshot) Root() *tree.Node { return s.root }

// Index returns the snapshot's sealed index.
func (s *Snapshot) Index() *tree.Index { return s.ix }

// deleted reports whether the snapshot is a tombstone — the committed
// form of Remove. Tombstones are never handed to readers: Snapshot and
// SnapshotAt translate them to not-found errors.
func (s *Snapshot) deleted() bool { return s.root == nil }

// Deleted reports whether the snapshot is a tombstone. Replication
// capture (CaptureAll) hands tombstones out so a follower checkpoint
// can retain them; every reader-facing path still hides them.
func (s *Snapshot) Deleted() bool { return s.deleted() }

// Open serializes the snapshot, making *Snapshot a Source: the
// streaming evaluator (which reads its input twice) can run over a
// snapshot like over a file. In-memory evaluation never goes through
// Open — the engine unwraps the tree directly.
func (s *Snapshot) Open() (io.ReadCloser, error) { return s.root.Open() }

// WriteXML serializes the snapshot to w, streaming straight from the
// structure-of-arrays columns when the snapshot carries them.
func (s *Snapshot) WriteXML(w io.Writer) error {
	if s.ix != nil && s.ix.Cols() != nil {
		return s.ix.WriteXML(w)
	}
	return s.root.WriteXML(w)
}

// NumNodes returns the number of live nodes in the snapshot — the count
// reachable from its root. Along a path-copied version chain this is
// smaller than the chain's ordinal-space width (replaced nodes leave
// holes until compaction renumbers).
func (s *Snapshot) NumNodes() int {
	if s.ix == nil {
		return 0
	}
	if s.ix.Live > 0 {
		return s.ix.Live
	}
	return s.ix.NumNodes
}

// Commit describes one successful write: the snapshot it produced and
// what the persistent (shared-structure) adoption cost.
type Commit struct {
	// Version of the snapshot the write produced.
	Version uint64
	// CopiedNodes and CopiedBytes are the materialization cost of the
	// commit: the nodes newly copied (for a path-copied update, only
	// the spine from each change to the root plus inserted content) and
	// the heap bytes they retain together with the column chunks copied
	// for the new version. Zero for a no-op update (nothing matched:
	// the new version shares the predecessor's whole tree) and for
	// adopted ingests.
	CopiedNodes int
	CopiedBytes int64
	// SharedWithPrev counts result nodes the new version kept from the
	// previous snapshot by reference — the "touches only the relevant
	// region" number. A no-op update shares the whole tree.
	SharedWithPrev int
	// CopiedChunks and SharedChunks report chunk-level structure
	// sharing between the new version's columns and the previous
	// snapshot's: how many chunks the commit allocated or rewrote
	// versus aliased untouched. A no-op update shares every chunk.
	CopiedChunks int
	SharedChunks int
}

// docState is the per-name version chain head plus the recent-history
// ring. The head pointer is the whole synchronization story of the read
// path: Store.Snapshot is one map read plus one atomic load, and a
// published *Snapshot is immutable. The ring serves SnapshotAt for
// recent versions the same way — slot version % len, validated by the
// version stamp, so an overwritten or raced slot is a clean miss, never
// a wrong answer.
type docState struct {
	cur atomic.Pointer[Snapshot]
	// wmu serializes writers of this document in a durable store, so a
	// WAL record's version is decided before the record is appended and
	// the following CAS cannot lose. In-memory stores never lock it:
	// their writers race on the CAS as before.
	wmu  sync.Mutex
	hist []atomic.Pointer[Snapshot]
}

// publish installs s as the chain head (the caller has won or owns the
// right to advance the chain) and retains it in the history ring.
func (ds *docState) pushHist(s *Snapshot) {
	if n := uint64(len(ds.hist)); n > 0 {
		ds.hist[s.version%n].Store(s)
	}
}

// clearHist drops every retained snapshot, unpinning the trees. Called
// on removal: a removed document's resident history dies with it.
func (ds *docState) clearHist() {
	for i := range ds.hist {
		ds.hist[i].Store(nil)
	}
}

// ringAt returns the retained snapshot of exactly the given version, or
// nil. Lock- and allocation-free.
func (ds *docState) ringAt(version uint64) *Snapshot {
	n := uint64(len(ds.hist))
	if n == 0 {
		return nil
	}
	if s := ds.hist[version%n].Load(); s != nil && s.version == version {
		return s
	}
	return nil
}

// Store is a named collection of versioned documents. The zero value is
// not usable; construct with New (in-memory) or Open (durable). A Store
// is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*docState

	histDepth int
	dur       *durable // nil for a purely in-memory store

	// follower marks a read-only replica: every write path fails typed
	// until Promote clears it. The replication applier (ApplyLogged)
	// bypasses the flag — it is how a follower's state advances.
	follower atomic.Bool
	// repl is the replica's replay position in the primary's log, for
	// observability; maintained by the replication layer.
	repl atomic.Pointer[wal.Pos]

	// hook is the commit hook (see SetCommitHook); nil when none is
	// installed.
	hook atomic.Pointer[func(CommitEvent)]
}

// New returns an empty in-memory store retaining DefaultHistoryDepth
// recent snapshots per document.
func New() *Store {
	return NewWithHistory(DefaultHistoryDepth)
}

// NewWithHistory returns an empty in-memory store retaining depth
// recent snapshots per document for SnapshotAt; depth 0 disables the
// ring.
func NewWithHistory(depth int) *Store {
	if depth < 0 {
		depth = 0
	}
	return &Store{docs: make(map[string]*docState), histDepth: depth}
}

func notFound(name string) error {
	return xerr.New(xerr.NotFound, "", "store: no document %q", name)
}

func conflict(name string, base, cur uint64) error {
	return xerr.New(xerr.Conflict, "", "store: %q version %d superseded (current %d)", name, base, cur)
}

// lookup returns the state of name, or nil.
func (st *Store) lookup(name string) *docState {
	st.mu.RLock()
	ds := st.docs[name]
	st.mu.RUnlock()
	return ds
}

// Snapshot returns the current committed version of name. The fast path
// is one read-locked map access and one atomic load; the returned
// handle is immune to later writes.
func (st *Store) Snapshot(name string) (*Snapshot, error) {
	ds := st.lookup(name)
	if ds == nil {
		return nil, notFound(name)
	}
	snap := ds.cur.Load()
	if snap == nil || snap.deleted() {
		return nil, notFound(name)
	}
	return snap, nil
}

// SnapshotAt returns the committed snapshot of name at exactly the
// given version. Recent versions — the current head and the
// per-document history ring — are served lock- and allocation-free with
// zero log reads. On a durable store, older versions still covered by
// the log are reconstructed by replaying the update records from the
// last checkpoint (ctx bounds that re-evaluation); versions compacted
// away, never committed, or removed at that version surface as typed
// not-found errors.
func (st *Store) SnapshotAt(ctx context.Context, name string, version uint64) (*Snapshot, error) {
	ds := st.lookup(name)
	if ds == nil {
		return nil, notFound(name)
	}
	cur := ds.cur.Load()
	if cur == nil {
		return nil, notFound(name)
	}
	if version == 0 || version > cur.version {
		return nil, xerr.New(xerr.NotFound, "", "store: %q has no version %d (current %d)", name, version, cur.version)
	}
	if version == cur.version {
		if cur.deleted() {
			return nil, removedAt(name, version)
		}
		return cur, nil
	}
	if s := ds.ringAt(version); s != nil {
		if s.deleted() {
			return nil, removedAt(name, version)
		}
		return s, nil
	}
	if st.dur == nil {
		return nil, xerr.New(xerr.NotFound, "", "store: %q version %d is no longer retained", name, version)
	}
	return st.dur.reconstruct(ctx, name, version)
}

func removedAt(name string, version uint64) error {
	return xerr.New(xerr.NotFound, "", "store: %q was removed at version %d", name, version)
}

// HistoryEntry describes one servable version of a document.
type HistoryEntry struct {
	// Version of the snapshot.
	Version uint64
	// Nodes in the snapshot (0 for a tombstone).
	Nodes int
	// Deleted marks the tombstone a Remove committed.
	Deleted bool
	// Resident marks versions served memory-only (the current head and
	// the history ring) — SnapshotAt on them reads no log.
	Resident bool
}

// History reports the versions of name that SnapshotAt can serve:
// the resident entries (current head and history ring, newest first)
// and the floor — the oldest version reconstructable at all. On an
// in-memory store the floor is the oldest resident version; on a
// durable store it extends back to the last checkpoint.
func (st *Store) History(name string) (entries []HistoryEntry, floor uint64, err error) {
	ds := st.lookup(name)
	if ds == nil {
		return nil, 0, notFound(name)
	}
	cur := ds.cur.Load()
	if cur == nil || cur.deleted() {
		// A removed document has no servable versions (its resident
		// history died with it), so its history is not-found — the same
		// answer every other read path gives.
		return nil, 0, notFound(name)
	}
	add := func(s *Snapshot) {
		for _, e := range entries {
			if e.Version == s.version {
				return
			}
		}
		entries = append(entries, HistoryEntry{
			Version:  s.version,
			Nodes:    s.NumNodes(),
			Deleted:  s.deleted(),
			Resident: true,
		})
	}
	add(cur)
	for i := range ds.hist {
		if s := ds.hist[i].Load(); s != nil && s.version <= cur.version {
			add(s)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Version > entries[j].Version })

	floor = entries[len(entries)-1].Version
	if st.dur != nil {
		if f, ok := st.dur.floorOf(name); ok && f < floor {
			floor = f
		}
	}
	return entries, floor, nil
}

// Names returns the stored document names, unordered. Removed documents
// (tombstones awaiting checkpoint GC) are not listed.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.docs))
	for name, ds := range st.docs {
		if s := ds.cur.Load(); s != nil && !s.deleted() {
			out = append(out, name)
		}
	}
	return out
}

// Len returns the number of stored (non-removed) documents.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, ds := range st.docs {
		if s := ds.cur.Load(); s != nil && !s.deleted() {
			n++
		}
	}
	return n
}

// Remove deletes name, reporting whether it existed. The removal is a
// committed version: a tombstone snapshot is published on the chain (and
// logged, when durable), so readers holding handles are unaffected, an
// optimistic commit racing with the removal fails with a not-found error
// rather than committing into an unreachable chain, and a later Put of
// the same name continues the version chain. The history ring is
// dropped with the document — removal forgets resident history, so the
// removed trees become collectible (a durable store can still
// reconstruct pre-removal versions from the log until the next
// checkpoint). Tombstones themselves are small and are garbage-collected
// by the next checkpoint on durable stores.
func (st *Store) Remove(name string) (bool, error) {
	if st.follower.Load() {
		return false, readOnly()
	}
	ds := st.lookup(name)
	if ds == nil {
		return false, nil
	}
	if st.dur != nil {
		ds = st.lockWriter(name, ds)
		defer ds.wmu.Unlock()
	}
	start := time.Now()
	for {
		old := ds.cur.Load()
		if old == nil || old.deleted() {
			return false, nil
		}
		next := &Snapshot{name: name, version: old.version + 1}
		ev := CommitEvent{Name: name, Kind: CommitRemove, Version: next.version, Prev: old.version, Snap: next, PrevSnap: old}
		if st.dur != nil {
			err := st.commitDurable(ds, old, next, func() error {
				return st.dur.appendRemove(name, next.version)
			})
			if err != nil {
				return false, err
			}
			ds.clearHist()
			if hook := st.hookFn(); hook != nil {
				hook(ev)
			}
			observeCommit("remove", time.Since(start), Commit{Version: next.version})
			return true, nil
		}
		if hook := st.hookFn(); hook != nil {
			ds.wmu.Lock()
			if ds.cur.CompareAndSwap(old, next) {
				ds.clearHist()
				hook(ev)
				ds.wmu.Unlock()
				observeCommit("remove", time.Since(start), Commit{Version: next.version})
				return true, nil
			}
			ds.wmu.Unlock()
			mCASRetries.Inc()
			continue
		}
		if ds.cur.CompareAndSwap(old, next) {
			ds.clearHist()
			observeCommit("remove", time.Since(start), Commit{Version: next.version})
			return true, nil
		}
		mCASRetries.Inc()
	}
}

// state returns the docState for name, creating it if absent.
func (st *Store) state(name string) *docState {
	if ds := st.lookup(name); ds != nil {
		return ds
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ds := st.docs[name]; ds != nil {
		return ds
	}
	ds := &docState{}
	if st.histDepth > 0 {
		ds.hist = make([]atomic.Pointer[Snapshot], st.histDepth)
	}
	st.docs[name] = ds
	return ds
}

// lockWriter acquires the durable writer lock for name: the
// per-document wmu serializes this document's writers, so the WAL
// record's version is decided before the record is appended and the
// publishing CAS cannot lose. It revalidates that ds is still the live
// state: checkpoint GC can retire a tombstoned docState, in which case
// the writer must restart on the fresh one or the commit would publish
// into an unreachable chain while its record survives in the log.
func (st *Store) lockWriter(name string, ds *docState) *docState {
	for {
		ds.wmu.Lock()
		if st.lookup(name) == ds {
			return ds
		}
		ds.wmu.Unlock()
		ds = st.state(name)
	}
}

// commitDurable performs the logged half of a durable commit: append
// the record, publish the snapshot, retain it in the ring — all under
// the checkpoint gate, so no append→publish pair straddles a segment
// rotation (a record frozen into a covered segment is always published,
// and therefore captured, before the segment can be deleted). The gate
// is deliberately NOT held during query evaluation: a pending
// checkpoint stalls writers only for this short section plus the
// rotation fsync. The caller holds ds.wmu, which is what guarantees the
// CAS cannot lose.
func (st *Store) commitDurable(ds *docState, old, next *Snapshot, appendRec func() error) error {
	st.dur.gate.RLock()
	defer st.dur.gate.RUnlock()
	if err := appendRec(); err != nil {
		return err
	}
	if !ds.cur.CompareAndSwap(old, next) {
		// Unreachable while wmu serializes this document's writers; fail
		// loudly rather than diverge memory from the log.
		return xerr.New(xerr.Eval, "", "store: internal: durable publish lost a race under the writer lock")
	}
	ds.pushHist(next)
	return nil
}

// Put commits doc as the next version of name, creating the document at
// version 1 when the name is new. When adopt is true the store takes
// ownership of doc directly — the caller must hand over a private,
// fully-built tree (e.g. one it just parsed) and never touch it again;
// the tree's index is sealed in place, skipping the snapshot copy.
// When adopt is false doc is snapshot-copied, so the caller keeps
// ownership of its tree.
func (st *Store) Put(name string, doc *tree.Node, adopt bool) (*Snapshot, Commit, error) {
	if doc == nil {
		return nil, Commit{}, xerr.New(xerr.Eval, "", "store: nil document for %q", name)
	}
	if st.follower.Load() {
		return nil, Commit{}, readOnly()
	}
	start := time.Now()
	var (
		root *tree.Node
		ix   *tree.Index
		cs   tree.CopyStats
	)
	owner := tree.SealedOwner(doc)
	if adopt && owner == nil {
		root = doc
		ix = tree.Seal(doc)
	} else {
		// Either the caller keeps ownership, or the "private" tree shares
		// nodes with a sealed snapshot (it was not private after all):
		// copy in both cases. A sealed owner (e.g. re-ingesting another
		// snapshot) seeds the symbol table, so its labels keep their ids
		// and the copy walk skips the intern lookups.
		root, ix, cs = tree.Freeze(doc, owner)
	}
	ds := st.state(name)
	if st.dur != nil {
		ds = st.lockWriter(name, ds)
		defer ds.wmu.Unlock()
	}
	for {
		old := ds.cur.Load()
		next := &Snapshot{name: name, version: 1, root: root, ix: ix}
		if old != nil {
			next.version = old.version + 1
		}
		com := Commit{
			Version: next.version, CopiedNodes: cs.Nodes, CopiedBytes: cs.Bytes,
			CopiedChunks: cs.CopiedChunks, SharedChunks: cs.SharedChunks,
		}
		ev := CommitEvent{Name: name, Kind: CommitPut, Version: next.version, Snap: next, PrevSnap: old}
		if old != nil {
			ev.Prev = old.version
		}
		if st.dur != nil {
			err := st.commitDurable(ds, old, next, func() error {
				return st.dur.appendPut(name, next.version, root, old == nil)
			})
			if err != nil {
				return nil, Commit{}, err
			}
			if hook := st.hookFn(); hook != nil {
				hook(ev) // still under ds.wmu: events stay in version order
			}
			observeCommit("put", time.Since(start), com)
			return next, com, nil
		}
		if hook := st.hookFn(); hook != nil {
			// Publish under the writer lock so the hook observes commits
			// in version order; losers unlock and retry on the new head.
			ds.wmu.Lock()
			if ds.cur.CompareAndSwap(old, next) {
				ds.pushHist(next)
				hook(ev)
				ds.wmu.Unlock()
				observeCommit("put", time.Since(start), com)
				return next, com, nil
			}
			ds.wmu.Unlock()
			mCASRetries.Inc()
			continue
		}
		if ds.cur.CompareAndSwap(old, next) {
			ds.pushHist(next)
			observeCommit("put", time.Since(start), com)
			return next, com, nil
		}
		mCASRetries.Inc()
	}
}

// Apply commits the compiled update query c against the current version
// of name: the transform is evaluated copy-on-write over the snapshot
// (which concurrent readers keep using, untouched), the result is
// adopted into a fresh sealed snapshot, and the version chain head is
// advanced by CAS. A writer that loses the race re-evaluates against
// the winner's snapshot and tries again — Apply itself never returns a
// conflict. Use ApplyAt for compare-and-set semantics against a version
// the caller has seen.
func (st *Store) Apply(ctx context.Context, name string, c *core.Compiled, m core.Method) (*Snapshot, Commit, error) {
	return st.apply(ctx, name, c, m, 0)
}

// ApplyAt is Apply with optimistic concurrency surfaced: the commit
// only succeeds if the current version still equals base; otherwise a
// typed error of kind Conflict reports the version that superseded it,
// and the caller decides whether to re-read and retry.
func (st *Store) ApplyAt(ctx context.Context, name string, c *core.Compiled, m core.Method, base uint64) (*Snapshot, Commit, error) {
	if base == 0 {
		return nil, Commit{}, xerr.New(xerr.Conflict, "", "store: ApplyAt requires a base version (got 0)")
	}
	return st.apply(ctx, name, c, m, base)
}

func (st *Store) apply(ctx context.Context, name string, c *core.Compiled, m core.Method, base uint64) (*Snapshot, Commit, error) {
	if st.follower.Load() {
		return nil, Commit{}, readOnly()
	}
	ds := st.lookup(name)
	if ds == nil {
		return nil, Commit{}, notFound(name)
	}
	if st.dur != nil {
		ds = st.lockWriter(name, ds)
		defer ds.wmu.Unlock()
	}
	start := time.Now()
	retries := 0
	// done records the successful commit on the registry and, when the
	// request carries a trace, fills its commit section — the one source
	// the serving layer's commit JSON and EXPLAIN both read.
	done := func(com Commit, noop bool) {
		observeCommit("update", time.Since(start), com)
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.SetCommit(&obs.CommitTrace{
				Kind: "update", Version: com.Version, NoOp: noop,
				CopiedNodes: com.CopiedNodes, CopiedBytes: com.CopiedBytes,
				SharedWithPrev: com.SharedWithPrev,
				CopiedChunks:   com.CopiedChunks, SharedChunks: com.SharedChunks,
				Retries: retries,
			})
		}
	}
	for {
		snap := ds.cur.Load()
		if snap == nil || snap.deleted() {
			return nil, Commit{}, notFound(name)
		}
		if base != 0 && snap.version != base {
			return nil, Commit{}, conflict(name, base, snap.version)
		}

		// Resolve MethodAuto against this round's snapshot: its sealed
		// index carries the statistics the planner prices methods with,
		// and a lost CAS race re-plans against the winner's version.
		em := m
		var dec *plan.Decision
		if m == core.MethodAuto {
			d := plan.Choose(c, snap.ix)
			em, dec = d.Method, &d
		}
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.SetMethod(string(em))
			if dec != nil {
				tr.SetPlan(&obs.PlanTrace{
					Method: string(dec.Method), Auto: true,
					EstNodes: dec.EstNodes, EstCost: dec.EstCost,
					Reason: dec.Reason,
				})
			}
		}

		evalStart := time.Now()
		out, err := c.EvalContext(ctx, snap.root, em)
		if err != nil {
			return nil, Commit{}, err
		}
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.AddEval(time.Since(evalStart))
			tr.SetDocNodes(snap.NumNodes())
			if dec != nil {
				plan.ObserveError(dec.EstNodes, tr.NodesVisited())
			}
		}

		var (
			next = &Snapshot{name: name, version: snap.version + 1}
			com  = Commit{Version: snap.version + 1}
		)
		// A no-op update commits zero-copy: the new version shares the old
		// tree (sealed snapshots are immutable, so sharing root and index
		// across versions is safe). topDown and twoPass signal "nothing
		// matched" by returning the input itself; the other evaluators
		// always build a fresh root, so for them a structural comparison
		// (early-exit on the first difference, cheaper than the copy it
		// saves) keeps the zero-copy semantics method-independent.
		noop := out == snap.root
		if !noop && em != core.MethodTopDown && em != core.MethodTwoPass {
			noop = tree.Equal(out, snap.root)
		}
		if noop {
			next.root, next.ix = snap.root, snap.ix
			// Nothing was copied; the stats still say what was shared —
			// the whole previous tree, every chunk.
			com.SharedWithPrev = snap.NumNodes()
			if cols := snap.ix.Cols(); cols != nil {
				com.SharedChunks = cols.NumChunks()
			}
		} else {
			var cs tree.CopyStats
			next.root, next.ix, cs = tree.PathCopy(out, snap.ix)
			com.CopiedNodes, com.CopiedBytes = cs.Nodes, cs.Bytes
			com.SharedWithPrev = cs.SharedWithBase
			com.CopiedChunks, com.SharedChunks = cs.CopiedChunks, cs.SharedChunks
		}

		ev := CommitEvent{
			Name: name, Kind: CommitUpdate,
			Version: next.version, Prev: snap.version,
			Snap: next, PrevSnap: snap,
			Update: c, NoOp: noop,
		}
		if !noop {
			ev.Bridge = out
		}
		if st.dur != nil {
			err := st.commitDurable(ds, snap, next, func() error {
				return st.dur.appendUpdate(name, snap.version, next.version, c)
			})
			if err != nil {
				return nil, Commit{}, err
			}
			if hook := st.hookFn(); hook != nil {
				hook(ev) // still under ds.wmu: events stay in version order
			}
			done(com, noop)
			return next, com, nil
		}

		swapped := false
		if hook := st.hookFn(); hook != nil {
			// Publish under the writer lock so the hook observes commits
			// in version order; evaluation stayed outside the lock.
			ds.wmu.Lock()
			if swapped = ds.cur.CompareAndSwap(snap, next); swapped {
				ds.pushHist(next)
				hook(ev)
			}
			ds.wmu.Unlock()
		} else if swapped = ds.cur.CompareAndSwap(snap, next); swapped {
			ds.pushHist(next)
		}
		if !swapped {
			// Another writer committed first (in-memory stores only: a
			// durable commit holds the writer lock). With CAS semantics
			// that is the caller's conflict; without, re-evaluate on the
			// new head.
			if base != 0 {
				cur := ds.cur.Load()
				var curV uint64
				if cur != nil {
					curV = cur.version
				}
				return nil, Commit{}, conflict(name, base, curV)
			}
			retries++
			mCASRetries.Inc()
			continue
		}
		done(com, noop)
		return next, com, nil
	}
}
