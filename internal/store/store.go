// Package store implements a goroutine-safe, versioned, in-memory XML
// document store — the write path that turns transform queries from a
// query device into the update mechanism of a live corpus (the dual of
// the paper's central move, and the substrate the xtqd serving layer
// runs on).
//
// Named documents are held as immutable, indexed, sealed snapshots
// (tree.SnapshotCopy / tree.Seal). Readers obtain a *Snapshot via an
// atomic pointer load and evaluate compiled queries and composition
// plans against it with zero locking on the hot path: a sealed index is
// served by tree.EnsureIndex without the package mutex, and nothing ever
// mutates or re-stamps a sealed tree. Writers commit XQU updates
// copy-on-write: the update's transform query is evaluated over the
// current snapshot (structural sharing, input untouched), the result is
// adopted into a fresh sealed snapshot, and the new snapshot is
// published with a compare-and-swap on the per-document version chain —
// optimistic concurrency whose losers either retry (Apply) or surface a
// typed conflict error (ApplyAt).
package store

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// Snapshot is one immutable committed version of a named document.
// Snapshots are safe for unlimited concurrent readers, never change
// after publication, and remain valid (and evaluable) after newer
// versions are committed or the document is removed — a reader holding
// a handle is isolated from every later write.
type Snapshot struct {
	name    string
	version uint64
	root    *tree.Node
	ix      *tree.Index
}

// Name returns the document name the snapshot was committed under.
func (s *Snapshot) Name() string { return s.name }

// Version returns the snapshot's version: 1 for the first ingest of a
// name, incremented by every committed update or re-ingest.
func (s *Snapshot) Version() uint64 { return s.version }

// Root returns the snapshot's document node. The tree is sealed: treat
// it as strictly read-only (in-place mutation is rejected by
// core.Update.Apply, and evaluators never modify their input).
func (s *Snapshot) Root() *tree.Node { return s.root }

// Index returns the snapshot's sealed index.
func (s *Snapshot) Index() *tree.Index { return s.ix }

// Open serializes the snapshot, making *Snapshot a Source: the
// streaming evaluator (which reads its input twice) can run over a
// snapshot like over a file. In-memory evaluation never goes through
// Open — the engine unwraps the tree directly.
func (s *Snapshot) Open() (io.ReadCloser, error) { return s.root.Open() }

// WriteXML serializes the snapshot to w.
func (s *Snapshot) WriteXML(w io.Writer) error { return s.root.WriteXML(w) }

// NumNodes returns the number of nodes in the snapshot.
func (s *Snapshot) NumNodes() int { return s.ix.NumNodes }

// Commit describes one successful write: the snapshot it produced and
// what the copy-on-write adoption cost.
type Commit struct {
	// Version of the snapshot the write produced.
	Version uint64
	// CopiedNodes and CopiedBytes are the size of the snapshot copy the
	// commit performed — zero for a no-op update (nothing matched: the
	// new version shares the predecessor's whole tree) and for adopted
	// ingests.
	CopiedNodes int
	CopiedBytes int64
	// SharedWithPrev counts result nodes the update's evaluation reused
	// from the previous snapshot before adoption copied them — the
	// "touches only the relevant region" number: the copy-on-write
	// evaluation only built the difference.
	SharedWithPrev int
}

// docState is the per-name version chain head. The pointer is the whole
// synchronization story of the read path: Store.Snapshot is one map
// read plus one atomic load, and a published *Snapshot is immutable.
type docState struct {
	cur atomic.Pointer[Snapshot]
	// removed is set (under the store lock) when the name is deleted, so
	// an in-flight optimistic commit that raced with the removal can
	// detect that its CAS landed in an unreachable chain.
	removed atomic.Bool
}

// Store is a named collection of versioned documents. The zero value is
// not usable; construct with New. A Store is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*docState
}

// New returns an empty store.
func New() *Store {
	return &Store{docs: make(map[string]*docState)}
}

func notFound(name string) error {
	return xerr.New(xerr.NotFound, "", "store: no document %q", name)
}

func conflict(name string, base, cur uint64) error {
	return xerr.New(xerr.Conflict, "", "store: %q version %d superseded (current %d)", name, base, cur)
}

// lookup returns the state of name, or nil.
func (st *Store) lookup(name string) *docState {
	st.mu.RLock()
	ds := st.docs[name]
	st.mu.RUnlock()
	return ds
}

// Snapshot returns the current committed version of name. The fast path
// is one read-locked map access and one atomic load; the returned
// handle is immune to later writes.
func (st *Store) Snapshot(name string) (*Snapshot, error) {
	ds := st.lookup(name)
	if ds == nil {
		return nil, notFound(name)
	}
	snap := ds.cur.Load()
	if snap == nil {
		return nil, notFound(name)
	}
	return snap, nil
}

// Names returns the stored document names, unordered.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.docs))
	for name := range st.docs {
		out = append(out, name)
	}
	return out
}

// Len returns the number of stored documents.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.docs)
}

// Remove deletes name, reporting whether it existed. Readers holding
// snapshot handles are unaffected; an optimistic commit racing with the
// removal fails with a not-found error rather than committing into an
// unreachable chain.
func (st *Store) Remove(name string) bool {
	st.mu.Lock()
	ds := st.docs[name]
	if ds != nil {
		ds.removed.Store(true)
		delete(st.docs, name)
	}
	st.mu.Unlock()
	return ds != nil
}

// state returns the docState for name, creating it if absent.
func (st *Store) state(name string) *docState {
	if ds := st.lookup(name); ds != nil {
		return ds
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ds := st.docs[name]; ds != nil {
		return ds
	}
	ds := &docState{}
	st.docs[name] = ds
	return ds
}

// Put commits doc as the next version of name, creating the document at
// version 1 when the name is new. When adopt is true the store takes
// ownership of doc directly — the caller must hand over a private,
// fully-built tree (e.g. one it just parsed) and never touch it again;
// the tree's index is sealed in place, skipping the snapshot copy.
// When adopt is false doc is snapshot-copied, so the caller keeps
// ownership of its tree.
func (st *Store) Put(name string, doc *tree.Node, adopt bool) (*Snapshot, Commit, error) {
	if doc == nil {
		return nil, Commit{}, xerr.New(xerr.Eval, "", "store: nil document for %q", name)
	}
	var (
		root *tree.Node
		ix   *tree.Index
		cs   tree.CopyStats
	)
	owner := tree.SealedOwner(doc)
	if adopt && owner == nil {
		root = doc
		ix = tree.Seal(doc)
	} else {
		// Either the caller keeps ownership, or the "private" tree shares
		// nodes with a sealed snapshot (it was not private after all):
		// copy in both cases. A sealed owner (e.g. re-ingesting another
		// snapshot) seeds the symbol table, so its labels keep their ids
		// and the copy walk skips the intern lookups.
		root, ix, cs = tree.SnapshotCopy(doc, owner)
	}
	ds := st.state(name)
	for {
		old := ds.cur.Load()
		next := &Snapshot{name: name, version: 1, root: root, ix: ix}
		if old != nil {
			next.version = old.version + 1
		}
		if !ds.cur.CompareAndSwap(old, next) {
			continue
		}
		if ds.removed.Load() {
			return nil, Commit{}, notFound(name)
		}
		return next, Commit{Version: next.version, CopiedNodes: cs.Nodes, CopiedBytes: cs.Bytes}, nil
	}
}

// Apply commits the compiled update query c against the current version
// of name: the transform is evaluated copy-on-write over the snapshot
// (which concurrent readers keep using, untouched), the result is
// adopted into a fresh sealed snapshot, and the version chain head is
// advanced by CAS. A writer that loses the race re-evaluates against
// the winner's snapshot and tries again — Apply itself never returns a
// conflict. Use ApplyAt for compare-and-set semantics against a version
// the caller has seen.
func (st *Store) Apply(ctx context.Context, name string, c *core.Compiled, m core.Method) (*Snapshot, Commit, error) {
	return st.apply(ctx, name, c, m, 0)
}

// ApplyAt is Apply with optimistic concurrency surfaced: the commit
// only succeeds if the current version still equals base; otherwise a
// typed error of kind Conflict reports the version that superseded it,
// and the caller decides whether to re-read and retry.
func (st *Store) ApplyAt(ctx context.Context, name string, c *core.Compiled, m core.Method, base uint64) (*Snapshot, Commit, error) {
	if base == 0 {
		return nil, Commit{}, xerr.New(xerr.Conflict, "", "store: ApplyAt requires a base version (got 0)")
	}
	return st.apply(ctx, name, c, m, base)
}

func (st *Store) apply(ctx context.Context, name string, c *core.Compiled, m core.Method, base uint64) (*Snapshot, Commit, error) {
	ds := st.lookup(name)
	if ds == nil {
		return nil, Commit{}, notFound(name)
	}
	for {
		snap := ds.cur.Load()
		if snap == nil || ds.removed.Load() {
			return nil, Commit{}, notFound(name)
		}
		if base != 0 && snap.version != base {
			return nil, Commit{}, conflict(name, base, snap.version)
		}

		out, err := c.EvalContext(ctx, snap.root, m)
		if err != nil {
			return nil, Commit{}, err
		}

		var (
			next = &Snapshot{name: name, version: snap.version + 1}
			com  = Commit{Version: snap.version + 1}
		)
		// A no-op update commits zero-copy: the new version shares the old
		// tree (sealed snapshots are immutable, so sharing root and index
		// across versions is safe). topDown and twoPass signal "nothing
		// matched" by returning the input itself; the other evaluators
		// always build a fresh root, so for them a structural comparison
		// (early-exit on the first difference, cheaper than the copy it
		// saves) keeps the zero-copy semantics method-independent.
		noop := out == snap.root
		if !noop && m != core.MethodTopDown && m != core.MethodTwoPass {
			noop = tree.Equal(out, snap.root)
		}
		if noop {
			next.root, next.ix = snap.root, snap.ix
		} else {
			var cs tree.CopyStats
			next.root, next.ix, cs = tree.SnapshotCopy(out, snap.ix)
			com.CopiedNodes, com.CopiedBytes = cs.Nodes, cs.Bytes
			com.SharedWithPrev = cs.SharedWithBase
		}

		if !ds.cur.CompareAndSwap(snap, next) {
			// Another writer committed first. With CAS semantics that is
			// the caller's conflict; without, re-evaluate on the new head.
			if base != 0 {
				cur := ds.cur.Load()
				var curV uint64
				if cur != nil {
					curV = cur.version
				}
				return nil, Commit{}, conflict(name, base, curV)
			}
			continue
		}
		if ds.removed.Load() {
			return nil, Commit{}, notFound(name)
		}
		return next, com, nil
	}
}
