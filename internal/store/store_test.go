package store

import (
	"context"
	"errors"
	"sync"
	"testing"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xerr"
)

const partsXML = `<db>` +
	`<part><pname>keyboard</pname><supplier><sname>HP</sname><price>15</price><country>US</country></supplier></part>` +
	`<part><pname>mouse</pname><supplier><sname>Dell</sname><price>9</price><country>A</country></supplier></part>` +
	`</db>`

func parse(t *testing.T, xml string) *tree.Node {
	t.Helper()
	d, err := sax.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compile(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kindOf(t *testing.T, err error) xerr.Kind {
	t.Helper()
	var xe *xerr.Error
	if !errors.As(err, &xe) {
		t.Fatalf("error %v is not *xerr.Error", err)
	}
	return xe.Kind
}

func TestPutSnapshotVersioning(t *testing.T) {
	st := New()

	if _, err := st.Snapshot("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("missing doc must be notfound")
	}

	// Adopted ingest: the parsed tree is handed over, no copy.
	doc := parse(t, partsXML)
	snap, com, err := st.Put("parts", doc, true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 || com.Version != 1 {
		t.Fatalf("first ingest version = %d", snap.Version())
	}
	if com.CopiedNodes != 0 {
		t.Fatalf("adopted ingest copied %d nodes", com.CopiedNodes)
	}
	if snap.Root() != doc {
		t.Fatal("adopted ingest did not take the tree")
	}
	if !snap.Index().Sealed() {
		t.Fatal("snapshot index not sealed")
	}

	// Copied ingest: the caller keeps its tree.
	mine := parse(t, partsXML)
	snap2, com2, err := st.Put("parts", mine, false)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version() != 2 {
		t.Fatalf("re-ingest version = %d, want 2", snap2.Version())
	}
	if com2.CopiedNodes != mine.Size() {
		t.Fatalf("copied ingest copied %d nodes, want %d", com2.CopiedNodes, mine.Size())
	}
	if snap2.Root() == mine {
		t.Fatal("copied ingest aliased the caller's tree")
	}
	// The caller's tree is still usable and unsealed.
	if tree.SealedOwner(mine) != nil {
		t.Fatal("copied ingest sealed the caller's tree")
	}

	// Adopt requested for a tree sharing a sealed snapshot: must copy.
	snap3, com3, err := st.Put("parts2", snap2.Root(), true)
	if err != nil {
		t.Fatal(err)
	}
	if com3.CopiedNodes == 0 || snap3.Root() == snap2.Root() {
		t.Fatal("sealed tree was adopted instead of copied")
	}

	names := st.Names()
	if len(names) != 2 || st.Len() != 2 {
		t.Fatalf("Names = %v", names)
	}
}

func TestApplyCommitsNewVersion(t *testing.T) {
	st := New()
	ctx := context.Background()
	base := parse(t, partsXML)
	baseXML := base.String()
	if _, _, err := st.Put("parts", base, true); err != nil {
		t.Fatal(err)
	}

	del := compile(t, `transform copy $a := doc("parts") modify do delete $a//price return $a`)
	v1, _ := st.Snapshot("parts")
	snap, com, err := st.Apply(ctx, "parts", del, core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 2 || com.Version != 2 {
		t.Fatalf("version = %d, want 2", snap.Version())
	}
	// The old snapshot is untouched: readers holding v1 see version 1.
	if v1.Root().String() != baseXML {
		t.Fatal("commit mutated the previous snapshot")
	}
	if snap.Root().String() == baseXML {
		t.Fatal("commit did not apply the update")
	}
	// The commit is a path copy: only the spine from the deleted nodes
	// to the root is copied, the untouched subtrees are shared with the
	// previous version by reference.
	if com.CopiedNodes == 0 || com.CopiedNodes >= snap.NumNodes() {
		t.Fatalf("CopiedNodes = %d, want 0 < n < %d (path copy, not whole tree)",
			com.CopiedNodes, snap.NumNodes())
	}
	if com.SharedWithPrev == 0 {
		t.Fatal("update evaluation shared nothing with the previous version")
	}
	if com.CopiedBytes <= 0 {
		t.Fatal("CopiedBytes not reported")
	}
	// The new version and its aliased subtrees are sealed-owned.
	if !snap.Index().Sealed() || tree.SealedOwner(snap.Root()) == nil {
		t.Fatal("new snapshot not sealed-owned")
	}

	// No-op update: version advances, tree and index shared with v2 —
	// zero-copy for every evaluation method, not just topDown's
	// identity-returning fast path (naive and copyupdate always build a
	// fresh root, which the store detects structurally).
	noop := compile(t, `transform copy $a := doc("parts") modify do delete $a//nosuchlabel return $a`)
	wantV := snap.Version()
	for _, m := range core.Methods() {
		snapN, comN, err := st.Apply(ctx, "parts", noop, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		wantV++
		if snapN.Version() != wantV {
			t.Fatalf("%s: no-op version = %d, want %d", m, snapN.Version(), wantV)
		}
		if comN.CopiedNodes != 0 || snapN.Root() != snap.Root() {
			t.Fatalf("%s: no-op commit copied the tree (%d nodes)", m, comN.CopiedNodes)
		}
	}
}

func TestApplyAtConflict(t *testing.T) {
	st := New()
	ctx := context.Background()
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)

	// CAS at the right version succeeds.
	snap, _, err := st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 2 {
		t.Fatalf("version = %d", snap.Version())
	}

	// CAS at the stale version conflicts, and nothing is committed.
	_, _, err = st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, 1)
	if kindOf(t, err) != xerr.Conflict {
		t.Fatalf("stale ApplyAt = %v, want conflict", err)
	}
	if cur, _ := st.Snapshot("parts"); cur.Version() != 2 {
		t.Fatalf("failed CAS advanced the version to %d", cur.Version())
	}

	// Base 0 is rejected (it would mean "any version" by accident).
	if _, _, err := st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, 0); kindOf(t, err) != xerr.Conflict {
		t.Fatalf("ApplyAt(0) = %v", err)
	}

	if _, _, err := st.Apply(ctx, "missing", ins, core.MethodTopDown); kindOf(t, err) != xerr.NotFound {
		t.Fatal("Apply on missing doc must be notfound")
	}
}

func TestApplyCancellation(t *testing.T) {
	st := New()
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	del := compile(t, `transform copy $a := doc("parts") modify do delete $a//price return $a`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := st.Apply(ctx, "parts", del, core.MethodTopDown)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Apply = %v", err)
	}
	if snap, _ := st.Snapshot("parts"); snap.Version() != 1 {
		t.Fatal("cancelled Apply committed")
	}
}

func TestRemove(t *testing.T) {
	st := New()
	ctx := context.Background()
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	held, _ := st.Snapshot("parts")
	if ok, err := st.Remove("parts"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if ok, err := st.Remove("parts"); err != nil || ok {
		t.Fatalf("double Remove = %v, %v", ok, err)
	}
	if _, err := st.Snapshot("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("removed doc must be notfound")
	}
	// A held handle keeps working.
	if held.Root().String() == "" {
		t.Fatal("held snapshot broken")
	}
	del := compile(t, `transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if _, _, err := st.Apply(ctx, "parts", del, core.MethodTopDown); kindOf(t, err) != xerr.NotFound {
		t.Fatal("Apply after Remove must be notfound")
	}
	if _, _, err := st.History("parts"); kindOf(t, err) != xerr.NotFound {
		t.Fatal("History after Remove must be notfound")
	}
	// The removal is itself a committed version: the tombstone sits at
	// v2, so re-ingesting continues the chain at v3 instead of
	// restarting it — SnapshotAt history stays unambiguous.
	snap, _, err := st.Put("parts", parse(t, partsXML), true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 3 {
		t.Fatalf("re-created doc version = %d, want 3", snap.Version())
	}
	// The tombstone version itself is not servable.
	if _, err := st.SnapshotAt(ctx, "parts", 2); kindOf(t, err) != xerr.NotFound {
		t.Fatal("tombstone version must be notfound")
	}
	// Removal dropped the resident history with the document (so the
	// removed trees are collectible): the pre-removal version is gone
	// from an in-memory store. A held handle is the way to keep it.
	if _, err := st.SnapshotAt(ctx, "parts", 1); kindOf(t, err) != xerr.NotFound {
		t.Fatal("pre-removal version must be forgotten by an in-memory store")
	}
}

// TestConcurrentReadersOneWriter is the acceptance shape of the store:
// 8 readers evaluating a prepared query over snapshots, lock-free, while
// one writer commits updates — run under -race in CI.
func TestConcurrentReadersOneWriter(t *testing.T) {
	st := New()
	ctx := context.Background()
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	read := compile(t, `transform copy $a := doc("parts") modify do rename $a//supplier as vendor return $a`)
	write := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := st.Snapshot("parts")
				if err != nil {
					panic(err)
				}
				if _, err := read.EvalContext(ctx, snap.Root(), core.MethodTopDown); err != nil {
					panic(err)
				}
			}
		}()
	}
	var last uint64
	for i := 0; i < 25; i++ {
		snap, _, err := st.Apply(ctx, "parts", write, core.MethodTopDown)
		if err != nil {
			t.Error(err)
			break
		}
		if snap.Version() <= last {
			t.Errorf("version did not advance: %d -> %d", last, snap.Version())
			break
		}
		last = snap.Version()
	}
	close(stop)
	wg.Wait()
	if last != 26 {
		t.Fatalf("final version = %d, want 26", last)
	}
}

// TestConcurrentWritersCAS exercises optimistic concurrency: many
// ApplyAt writers race from the same base; exactly one wins per round.
func TestConcurrentWritersCAS(t *testing.T) {
	st := New()
	ctx := context.Background()
	if _, _, err := st.Put("parts", parse(t, partsXML), true); err != nil {
		t.Fatal(err)
	}
	ins := compile(t, `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`)

	for round := 0; round < 5; round++ {
		base, _ := st.Snapshot("parts")
		const writers = 4
		errs := make([]error, writers)
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _, errs[i] = st.ApplyAt(ctx, "parts", ins, core.MethodTopDown, base.Version())
			}(i)
		}
		wg.Wait()
		wins, conflicts := 0, 0
		for _, err := range errs {
			switch {
			case err == nil:
				wins++
			case kindOf(t, err) == xerr.Conflict:
				conflicts++
			default:
				t.Fatalf("unexpected error %v", err)
			}
		}
		if wins != 1 || conflicts != writers-1 {
			t.Fatalf("round %d: wins=%d conflicts=%d", round, wins, conflicts)
		}
		cur, _ := st.Snapshot("parts")
		if cur.Version() != base.Version()+1 {
			t.Fatalf("round %d: version %d, want %d", round, cur.Version(), base.Version()+1)
		}
	}
}
