// Package xtq is a Go implementation of transform queries — "Querying XML
// with Update Syntax" (Fan, Cong & Bohannon, SIGMOD 2007).
//
// A transform query uses XML update syntax to define a side-effect-free
// query: it returns the tree that an update *would* produce, without
// touching the source document.
//
// # Engine and Prepared
//
// The entry points are Engine and Prepared, shaped like database/sql: a
// long-lived engine compiles queries once (query text → selecting NFA →
// qualifier list, §3.4) and hands out reusable, goroutine-safe prepared
// statements, with an LRU cache absorbing repeated Prepare calls:
//
//	eng := xtq.NewEngine(xtq.WithMethod(xtq.MethodTopDown))
//	p, err := eng.Prepare(`transform copy $a := doc("parts") modify
//	                       do delete $a//price return $a`)
//	doc, err := xtq.ParseString(`<db><part><price>9</price></part></db>`)
//	view, err := p.Eval(ctx, doc)
//
// Inputs are unified behind Source (a *Node, FileSource, BytesSource,
// FromString, FromReader all qualify) and streaming output behind Sink:
//
//	res, err := p.EvalStream(ctx, xtq.FileSource("big.xml"), xtq.ToWriter(out))
//
// Every method takes a context.Context; cancellation aborts in-memory
// evaluation at node granularity and streaming evaluation at SAX-event
// granularity. Failures are *Error values classified by kind
// (parse/compile/eval/io) — see Error.
//
// # Views
//
// A View is a stack of transform queries defining a virtual document —
// the §4 machinery behind hypothetical states, virtual updated views and
// security views, generalized to the layered compositions those
// applications imply (a security view over a virtual update over a
// hypothetical state). User queries prepared against a view evaluate in
// a single pass over the source document; no layer is ever materialized:
//
//	v, err := eng.View(
//	    `transform copy $a := doc("d") modify do insert <audit/> into $a/db/part return $a`,
//	    `transform copy $a := doc("d") modify do delete $a/db/part/price return $a`,
//	)
//	pv, err := v.Prepare(`for $x in /db/part return <row>{$x/pname}</row>`)
//	res, stats, err := pv.Eval(ctx, xtq.FileSource("db.xml"))
//
// PreparedView is goroutine-safe (statistics come back by value, one
// LayerStats per transform layer) and composition plans are cached on
// the engine keyed by (view stack, user query).
//
// # Store
//
// A Store turns update syntax into the write path of a live corpus: it
// holds named documents as immutable versioned snapshots, commits XQU
// update queries copy-on-write with optimistic versioning (KindConflict
// on a lost ApplyAt race), and hands readers lock-free Snapshot handles
// that any Prepared or PreparedView evaluates against:
//
//	st := xtq.NewStore(eng)
//	_, _, err := st.Put(ctx, "parts", xtq.FileSource("parts.xml"))
//	snap, com, err := st.Apply(ctx, "parts",
//	    `transform copy $a := doc("parts") modify do delete $a//price return $a`)
//
// OpenStore builds the same store backed by a write-ahead log of
// logical update records — because commits are already update queries,
// the log stores their canonical text and recovery replays them through
// the engine: crash safety, snapshot checkpoints and time travel
// (Store.SnapshotAt) on top of the paper's own syntax.
//
// cmd/xtqd serves a Store over HTTP: ingest, queries, conditional
// updates, registered view stacks and versioned time-travel reads, with
// per-request timeouts and streamed responses; -wal makes it durable.
//
// # The paper's machinery
//
//   - four in-memory evaluation methods (Naive rewriting, the NFA-guided
//     topDown, the twoPass bottomUp+topDown combination, and a
//     copy-and-update baseline) behind one Method switch;
//   - a streaming twoPassSAX evaluator (Prepared.EvalStream, §6) that
//     handles documents far larger than memory in O(depth) space;
//   - composition of user queries with stacks of transform queries
//     (Engine.View, §4), the basis for querying hypothetical states,
//     virtual updated views and security views without materializing them;
//   - the XMark-like workload generator and the experiment harness that
//     regenerate the paper's Figures 11-15 (see cmd/xbench).
//
// The package-level Transform, TransformStream and Compose functions
// predate the Engine API; they are kept as deprecated wrappers over a
// default engine so existing callers keep working.
//
// All types are aliases of the implementation packages under internal/,
// so values flow freely between this facade and the benchmarks.
package xtq

import (
	"context"
	"io"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/saxeval"
	"xtq/internal/tree"
	"xtq/internal/xmark"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// Node is one node of an XML document tree.
type Node = tree.Node

// Attr is an element attribute.
type Attr = tree.Attr

// Query is a parsed transform query.
type Query = core.Query

// Compiled is a transform query with its selecting NFA built.
type Compiled = core.Compiled

// Method selects an evaluation algorithm.
type Method = core.Method

// Evaluation methods, named as in the paper's experiments.
const (
	// MethodNaive is the rewriting-based method of §3.1 ("NAIVE").
	MethodNaive = core.MethodNaive
	// MethodTopDown is the automaton-guided method of §3.3 ("GENTOP").
	MethodTopDown = core.MethodTopDown
	// MethodTwoPass is bottomUp + topDown of §5 ("TD-BU").
	MethodTwoPass = core.MethodTwoPass
	// MethodCopyUpdate is the snapshot baseline ("GalaXUpdate").
	MethodCopyUpdate = core.MethodCopyUpdate
	// MethodAuto asks the cost-based planner to pick one of the
	// concrete methods per (query, document) from the document's
	// statistics; ?explain=1 (and obs.Trace.Plan) report the choice
	// with its estimates.
	MethodAuto = core.MethodAuto
	// Auto is shorthand for MethodAuto: NewEngine(WithMethod(Auto)).
	Auto = core.MethodAuto
)

// Methods lists the in-memory evaluation methods.
func Methods() []Method { return core.Methods() }

// MethodNames lists the method names as strings, for flag help text.
func MethodNames() []string { return core.MethodNames() }

// ParseMethod validates a method name before any input is touched,
// returning a KindEval error naming the valid methods when it is unknown.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// UserQuery is a for/where/return query in the restricted form of §4.
type UserQuery = xquery.UserQuery

// Composed is the single-pass composition of a user query with a
// transform query (the Compose Method of §4).
//
// Deprecated: use Engine.View and View.Prepare; the resulting
// PreparedView is goroutine-safe, supports stacked transforms, and
// returns statistics by value.
type Composed = compose.Composed

// NaiveComposition evaluates the transform and user queries sequentially.
//
// Deprecated: use PreparedView.EvalSequential.
type NaiveComposition = compose.NaiveComposition

// Path is a parsed expression of the XPath fragment X.
type Path = xpath.Path

// Parse reads an XML document from r. Well-formedness violations
// classify as KindParse (with their line:col position); reader failures
// classify as KindIO.
func Parse(r io.Reader) (*Node, error) {
	n, err := sax.Parse(r)
	if err != nil {
		return nil, classify(err, KindIO)
	}
	return n, nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Node, error) {
	n, err := sax.ParseString(s)
	if err != nil {
		// A string source cannot fail mid-read: every error here is a
		// well-formedness violation.
		return nil, classify(err, KindParse)
	}
	return n, nil
}

// ParseFile parses the XML document in the named file.
func ParseFile(path string) (*Node, error) {
	return defaultEngine.parse(context.Background(), FileSource(path))
}

// ParseQuery parses a transform query in the W3C draft surface syntax,
// e.g. `transform copy $a := doc("f") modify do delete $a//price return $a`.
func ParseQuery(src string) (*Query, error) {
	q, err := core.ParseQuery(src)
	if err != nil {
		return nil, classify(err, KindParse)
	}
	return q, nil
}

// ParsePath parses an expression of the XPath fragment X.
func ParsePath(src string) (*Path, error) {
	p, err := xpath.Parse(src)
	if err != nil {
		return nil, classify(err, KindParse)
	}
	return p, nil
}

// ParseUserQuery parses a user query, e.g.
// `for $x in /site/people/person where $x/profile/age > 20 return $x/name`.
func ParseUserQuery(src string) (*UserQuery, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, classify(err, KindParse)
	}
	return q, nil
}

// defaultEngine backs the deprecated package-level functions, so legacy
// callers share one compiled-query cache.
var defaultEngine = NewEngine()

// Transform evaluates q over doc with the chosen method and returns the
// transformed document. The input document is never modified; depending on
// the method the result may share unmodified subtrees with it.
//
// Deprecated: Transform re-renders and re-looks-up q on every call. Use
// Engine.Prepare (or Engine.PrepareQuery) once and Prepared.Eval per
// document for cancellation support and compile amortization.
func Transform(doc *Node, q *Query, m Method) (*Node, error) {
	p, err := defaultEngine.PrepareQuery(q)
	if err != nil {
		return nil, err
	}
	return p.evalMethod(context.Background(), doc, m)
}

// StreamSource provides repeatable reads for TransformStream.
//
// Deprecated: use Source, its replacement name.
type StreamSource = saxeval.Source

// StreamResult reports per-pass statistics of a streaming evaluation.
type StreamResult = saxeval.Result

// TransformStream evaluates q over src with the twoPassSAX algorithm
// (§6), writing the resulting document to w as XML. Memory use is bounded
// by the document depth, independent of its size.
//
// Deprecated: use Engine.Prepare once and Prepared.EvalStream per
// document, which adds context cancellation and sink flexibility.
func TransformStream(q *Query, src Source, w io.Writer) (StreamResult, error) {
	p, err := defaultEngine.PrepareQuery(q)
	if err != nil {
		return StreamResult{}, err
	}
	return p.EvalStream(context.Background(), src, ToWriter(w))
}

// Compose builds the single-pass composition Qc with Qc(T) = Q(Qt(T)).
//
// Deprecated: use Engine.Prepare once and Prepared.Compose.
func Compose(qt *Query, q *UserQuery) (*Composed, error) {
	p, err := defaultEngine.PrepareQuery(qt)
	if err != nil {
		return nil, err
	}
	return p.Compose(q)
}

// NaiveCompose builds the sequential composition of §4's Naive
// Composition Method.
//
// Deprecated: use Engine.Prepare once and Prepared.NaiveCompose.
func NaiveCompose(qt *Query, q *UserQuery) (*NaiveComposition, error) {
	p, err := defaultEngine.PrepareQuery(qt)
	if err != nil {
		return nil, err
	}
	return p.NaiveCompose(q)
}

// XMarkConfig parameterizes the workload generator.
type XMarkConfig = xmark.Config

// GenerateXMark builds an XMark-like document in memory.
func GenerateXMark(cfg XMarkConfig) (*Node, error) { return xmark.Generate(cfg) }

// WriteXMarkFile streams an XMark-like document to a file and reports its
// size in bytes; use it to produce inputs for streaming evaluation.
func WriteXMarkFile(cfg XMarkConfig, path string) (int64, error) {
	return xmark.WriteFile(cfg, path)
}
