// Package xtq is a Go implementation of transform queries — "Querying XML
// with Update Syntax" (Fan, Cong & Bohannon, SIGMOD 2007).
//
// A transform query uses XML update syntax to define a side-effect-free
// query: it returns the tree that an update *would* produce, without
// touching the source document:
//
//	q, _ := xtq.ParseQuery(`transform copy $a := doc("parts") modify
//	                        do delete $a//price return $a`)
//	doc, _ := xtq.ParseString(`<db><part><price>9</price></part></db>`)
//	view, _ := xtq.Transform(doc, q, xtq.MethodTopDown)
//
// The package exposes the paper's machinery:
//
//   - four in-memory evaluation methods (Naive rewriting, the NFA-guided
//     topDown, the twoPass bottomUp+topDown combination, and a
//     copy-and-update baseline) behind one Method switch;
//   - a streaming twoPassSAX evaluator (TransformStream) that handles
//     documents far larger than memory in O(depth) space;
//   - composition of user queries with transform queries (Compose), the
//     basis for querying hypothetical states, virtual updated views and
//     security views without materializing them;
//   - the XMark-like workload generator and the experiment harness that
//     regenerate the paper's Figures 11-15 (see cmd/xbench).
//
// All types are aliases of the implementation packages under internal/,
// so values flow freely between this facade and the benchmarks.
package xtq

import (
	"io"
	"os"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/saxeval"
	"xtq/internal/tree"
	"xtq/internal/xmark"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// Node is one node of an XML document tree.
type Node = tree.Node

// Attr is an element attribute.
type Attr = tree.Attr

// Query is a parsed transform query.
type Query = core.Query

// Compiled is a transform query with its selecting NFA built.
type Compiled = core.Compiled

// Method selects an evaluation algorithm.
type Method = core.Method

// Evaluation methods, named as in the paper's experiments.
const (
	// MethodNaive is the rewriting-based method of §3.1 ("NAIVE").
	MethodNaive = core.MethodNaive
	// MethodTopDown is the automaton-guided method of §3.3 ("GENTOP").
	MethodTopDown = core.MethodTopDown
	// MethodTwoPass is bottomUp + topDown of §5 ("TD-BU").
	MethodTwoPass = core.MethodTwoPass
	// MethodCopyUpdate is the snapshot baseline ("GalaXUpdate").
	MethodCopyUpdate = core.MethodCopyUpdate
)

// Methods lists the in-memory evaluation methods.
func Methods() []Method { return core.Methods() }

// UserQuery is a for/where/return query in the restricted form of §4.
type UserQuery = xquery.UserQuery

// Composed is the single-pass composition of a user query with a
// transform query (the Compose Method of §4).
type Composed = compose.Composed

// NaiveComposition evaluates the transform and user queries sequentially.
type NaiveComposition = compose.NaiveComposition

// Path is a parsed expression of the XPath fragment X.
type Path = xpath.Path

// Parse reads an XML document from r.
func Parse(r io.Reader) (*Node, error) { return sax.Parse(r) }

// ParseString parses an XML document from a string.
func ParseString(s string) (*Node, error) { return sax.ParseString(s) }

// ParseFile parses the XML document in the named file.
func ParseFile(path string) (*Node, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sax.Parse(f)
}

// ParseQuery parses a transform query in the W3C draft surface syntax,
// e.g. `transform copy $a := doc("f") modify do delete $a//price return $a`.
func ParseQuery(src string) (*Query, error) { return core.ParseQuery(src) }

// ParsePath parses an expression of the XPath fragment X.
func ParsePath(src string) (*Path, error) { return xpath.Parse(src) }

// ParseUserQuery parses a user query, e.g.
// `for $x in /site/people/person where $x/profile/age > 20 return $x/name`.
func ParseUserQuery(src string) (*UserQuery, error) { return xquery.Parse(src) }

// Transform evaluates q over doc with the chosen method and returns the
// transformed document. The input document is never modified; depending on
// the method the result may share unmodified subtrees with it.
func Transform(doc *Node, q *Query, m Method) (*Node, error) {
	return q.Eval(doc, m)
}

// StreamSource provides repeatable reads for TransformStream.
type StreamSource = saxeval.Source

// FileSource streams a document from a file path.
type FileSource = saxeval.FileSource

// BytesSource streams a document from memory.
type BytesSource = saxeval.BytesSource

// StreamResult reports per-pass statistics of a streaming evaluation.
type StreamResult = saxeval.Result

// TransformStream evaluates q over src with the twoPassSAX algorithm
// (§6), writing the resulting document to w as XML. Memory use is bounded
// by the document depth, independent of its size.
func TransformStream(q *Query, src StreamSource, w io.Writer) (StreamResult, error) {
	c, err := q.Compile()
	if err != nil {
		return StreamResult{}, err
	}
	return saxeval.TransformXML(c, src, w)
}

// Compose builds the single-pass composition Qc with Qc(T) = Q(Qt(T)).
func Compose(qt *Query, q *UserQuery) (*Composed, error) {
	c, err := qt.Compile()
	if err != nil {
		return nil, err
	}
	return compose.New(c, q)
}

// NaiveCompose builds the sequential composition of §4's Naive
// Composition Method.
func NaiveCompose(qt *Query, q *UserQuery) (*NaiveComposition, error) {
	c, err := qt.Compile()
	if err != nil {
		return nil, err
	}
	return compose.NewNaive(c, q)
}

// XMarkConfig parameterizes the workload generator.
type XMarkConfig = xmark.Config

// GenerateXMark builds an XMark-like document in memory.
func GenerateXMark(cfg XMarkConfig) (*Node, error) { return xmark.Generate(cfg) }

// WriteXMarkFile streams an XMark-like document to a file and reports its
// size in bytes; use it to produce inputs for TransformStream.
func WriteXMarkFile(cfg XMarkConfig, path string) (int64, error) {
	return xmark.WriteFile(cfg, path)
}
