package xtq

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

const viewDB = `<db>
  <part><pname>keyboard</pname>
    <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
    <supplier><sname>Spy</sname><price>1</price><country>C1</country></supplier>
  </part>
  <part><pname>mouse</pname>
    <supplier><sname>Dell</sname><price>9</price><country>C2</country></supplier>
  </part>
</db>`

const (
	viewRedact = `transform copy $a := doc("d") modify
		do delete $a/db/part/supplier[country = "C1" or country = "C2"]/price return $a`
	viewHideCountry = `transform copy $a := doc("d") modify
		do delete $a/db/part/supplier/country return $a`
	viewUser = `for $x in /db/part/supplier return <entry>{$x/sname}{$x/price}{$x/country}</entry>`
)

func TestViewStackedEval(t *testing.T) {
	eng := NewEngine()
	v, err := eng.View(viewRedact, viewHideCountry)
	if err != nil {
		t.Fatal(err)
	}
	if v.Layers() != 2 {
		t.Fatalf("Layers = %d, want 2", v.Layers())
	}
	pv, err := v.Prepare(viewUser)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := pv.Eval(context.Background(), FromString(viewDB))
	if err != nil {
		t.Fatal(err)
	}
	out := got.String()
	if strings.Contains(out, "<country>") {
		t.Errorf("layer 2 leaked countries: %s", out)
	}
	if strings.Contains(out, "<price>1</price>") || strings.Contains(out, "<price>9</price>") {
		t.Errorf("layer 1 leaked redacted prices: %s", out)
	}
	if !strings.Contains(out, "<price>15</price>") {
		t.Errorf("unredacted price missing: %s", out)
	}
	if len(stats.Layers) != 2 {
		t.Fatalf("stats.Layers = %d, want 2", len(stats.Layers))
	}
	if stats.NodesVisited == 0 {
		t.Errorf("no navigation recorded: %+v", stats)
	}

	// The single pass agrees with materializing the stack sequentially.
	want, err := pv.EvalSequential(context.Background(), FromString(viewDB))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("Eval disagrees with EvalSequential:\n got  %s\n want %s", got, want)
	}

	// Materialize exposes the stacked view itself.
	mat, err := v.Materialize(context.Background(), FromString(viewDB))
	if err != nil {
		t.Fatal(err)
	}
	ms := mat.String()
	if strings.Contains(ms, "<country>") || strings.Contains(ms, "<price>1</price>") {
		t.Errorf("materialized view leaks hidden data: %s", ms)
	}
}

// TestPreparedViewConcurrent evaluates one PreparedView from 8 goroutines
// under -race: the plan must carry no per-run state.
func TestPreparedViewConcurrent(t *testing.T) {
	eng := NewEngine()
	v, err := eng.View(viewRedact, viewHideCountry)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := v.Prepare(viewUser)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(viewDB)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pv.Eval(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				got, stats, err := pv.Eval(context.Background(), doc)
				if err != nil {
					errs <- err
					return
				}
				if got.String() != want.String() {
					errs <- errors.New("concurrent evaluation diverged")
					return
				}
				if len(stats.Layers) != 2 || stats.NodesVisited == 0 {
					errs <- errors.New("concurrent evaluation returned empty stats")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestViewPlanCache(t *testing.T) {
	eng := NewEngine()
	v, err := eng.View(viewRedact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Prepare(viewUser); err != nil {
		t.Fatal(err)
	}
	if hits, misses, size := eng.ViewCacheStats(); hits != 0 || misses != 1 || size != 1 {
		t.Fatalf("after first Prepare: hits=%d misses=%d size=%d", hits, misses, size)
	}
	// Same stack, same user query — even via a separately built View and
	// textually different but canonically equal transform source.
	v2, err := eng.View(`transform copy $a := doc("d")
		modify do delete $a/db/part/supplier[country = "C1" or country = "C2"]/price
		return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Prepare(viewUser); err != nil {
		t.Fatal(err)
	}
	if hits, _, size := eng.ViewCacheStats(); hits != 1 || size != 1 {
		t.Fatalf("canonically equal view missed the plan cache: hits=%d size=%d", hits, size)
	}
	// A different user query keys a different plan.
	if _, err := v.Prepare(`for $x in /db/part return $x`); err != nil {
		t.Fatal(err)
	}
	if _, misses, size := eng.ViewCacheStats(); misses != 2 || size != 2 {
		t.Fatalf("distinct user query shared a plan: misses=%d size=%d", misses, size)
	}
	// PrepareQuery caches by canonical rendering too.
	q, err := ParseUserQuery(viewUser)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.PrepareQuery(q); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := eng.ViewCacheStats(); hits != 2 {
		t.Fatalf("PrepareQuery missed the plan cache: hits=%d", hits)
	}
}

func TestViewCacheEviction(t *testing.T) {
	eng := NewEngine(WithViewCacheSize(1))
	v, err := eng.View(viewRedact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Prepare(`for $x in /db/part return $x`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Prepare(`for $x in /db/part/supplier return $x`); err != nil {
		t.Fatal(err)
	}
	if _, _, size := eng.ViewCacheStats(); size != 1 {
		t.Fatalf("cache size %d exceeds capacity 1", size)
	}
	// Disabled cache never stores or counts.
	eng2 := NewEngine(WithViewCacheSize(0))
	v2, err := eng2.View(viewRedact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Prepare(viewUser); err != nil {
		t.Fatal(err)
	}
	if hits, misses, size := eng2.ViewCacheStats(); hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("disabled cache active: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestViewErrors(t *testing.T) {
	eng := NewEngine()
	var xe *Error
	if _, err := eng.View(); !errors.As(err, &xe) || xe.Kind != KindCompile {
		t.Errorf("empty stack: err = %v", err)
	}
	if _, err := eng.View("transform copy nonsense"); !errors.As(err, &xe) || xe.Kind != KindParse {
		t.Errorf("bad transform: err = %v", err)
	}
	v, err := eng.View(viewRedact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Prepare("for broken"); !errors.As(err, &xe) || xe.Kind != KindParse {
		t.Errorf("bad user query: err = %v", err)
	}
	if _, err := v.PrepareQuery(nil); !errors.As(err, &xe) || xe.Kind != KindCompile {
		t.Errorf("nil user query: err = %v", err)
	}
	pv, err := v.Prepare(viewUser)
	if err != nil {
		t.Fatal(err)
	}
	// A malformed source document keeps its parse kind through Eval.
	if _, _, err := pv.Eval(context.Background(), FromString("<db><part></db>")); !errors.As(err, &xe) || xe.Kind != KindParse {
		t.Errorf("malformed source: err = %v", err)
	}
	// Pre-cancelled contexts fail deterministically with KindEval.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := pv.Eval(ctx, FromString(viewDB)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Eval: err = %v", err)
	}
	if _, err := pv.EvalSequential(ctx, FromString(viewDB)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled EvalSequential: err = %v", err)
	}
	// An engine configured with an unknown method refuses to build views.
	bad := NewEngine(WithMethod(Method("bogus")))
	if _, err := bad.View(viewRedact); err == nil {
		t.Errorf("unknown method accepted by View")
	}
}

func TestViewAccessors(t *testing.T) {
	eng := NewEngine()
	v, err := eng.View(viewRedact, viewHideCountry)
	if err != nil {
		t.Fatal(err)
	}
	if v.Layer(0).String() == v.Layer(1).String() {
		t.Errorf("layers collapsed")
	}
	if !strings.Contains(v.String(), "view[") {
		t.Errorf("View.String() = %q", v.String())
	}
	pv, err := v.Prepare(viewUser)
	if err != nil {
		t.Fatal(err)
	}
	if pv.View() != v {
		t.Errorf("PreparedView.View() lost its view")
	}
	if pv.UserQuery() == nil || !strings.Contains(pv.String(), "view(") {
		t.Errorf("PreparedView accessors: q=%v s=%q", pv.UserQuery(), pv.String())
	}
}
