package xtq_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xtq"
)

const storeDoc = `<db>` +
	`<part><pname>keyboard</pname><supplier><sname>HP</sname><price>15</price><country>US</country></supplier></part>` +
	`<part><pname>mouse</pname><supplier><sname>Dell</sname><price>9</price><country>A</country></supplier></part>` +
	`</db>`

func storeKind(t *testing.T, err error) xtq.ErrorKind {
	t.Helper()
	var xe *xtq.Error
	if !errors.As(err, &xe) {
		t.Fatalf("error %v is not *xtq.Error", err)
	}
	return xe.Kind
}

func TestStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	st := xtq.NewStore(nil)

	snap, com, err := st.Put(ctx, "parts", xtq.FromString(storeDoc))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 || com.Version != 1 {
		t.Fatalf("ingest version = %d", snap.Version())
	}
	if com.CopiedNodes != 0 {
		t.Fatalf("parsed ingest should adopt, copied %d nodes", com.CopiedNodes)
	}

	// Prepared queries evaluate against the snapshot as a Source.
	p, err := st.Engine().Prepare(`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Eval(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.String(), "<price>") {
		t.Fatal("delete did not apply on read")
	}
	// ... and as a streaming source (Open → parse twice).
	var buf bytes.Buffer
	if _, err := p.EvalStream(ctx, snap, xtq.ToWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<price>") {
		t.Fatal("streaming evaluation over snapshot diverges")
	}

	// Commit the same update: readers of v1 unaffected, v2 has no prices.
	snap2, com2, err := st.Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version() != 2 || com2.CopiedNodes == 0 {
		t.Fatalf("commit: version=%d copied=%d", snap2.Version(), com2.CopiedNodes)
	}
	if !strings.Contains(snap.Root().String(), "<price>") {
		t.Fatal("v1 snapshot lost its prices")
	}
	if strings.Contains(snap2.Root().String(), "<price>") {
		t.Fatal("v2 snapshot kept its prices")
	}
	if cur, _ := st.Snapshot("parts"); cur.Version() != 2 {
		t.Fatal("Snapshot does not serve the latest version")
	}
}

func TestStoreApplyAtConflictKind(t *testing.T) {
	ctx := context.Background()
	st := xtq.NewStore(nil)
	if _, _, err := st.Put(ctx, "d", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}
	up := `transform copy $a := doc("d") modify do insert <audit/> into $a/db/part return $a`
	if _, _, err := st.ApplyAt(ctx, "d", up, 1); err != nil {
		t.Fatal(err)
	}
	_, _, err := st.ApplyAt(ctx, "d", up, 1)
	if storeKind(t, err) != xtq.KindConflict {
		t.Fatalf("stale ApplyAt kind = %v, want conflict", err)
	}
	if _, err := st.Snapshot("missing"); storeKind(t, err) != xtq.KindNotFound {
		t.Fatal("missing doc kind != notfound")
	}
	if _, _, err := st.Apply(ctx, "d", `transform nonsense`); storeKind(t, err) != xtq.KindParse {
		t.Fatal("bad update query kind != parse")
	}
}

func TestStorePutDoesNotAliasCallerTree(t *testing.T) {
	ctx := context.Background()
	st := xtq.NewStore(nil)
	doc, err := xtq.ParseString(storeDoc)
	if err != nil {
		t.Fatal(err)
	}
	snap, com, err := st.Put(ctx, "d", doc)
	if err != nil {
		t.Fatal(err)
	}
	if com.CopiedNodes == 0 || snap.Root() == doc {
		t.Fatal("caller tree was adopted, not copied")
	}
	// The caller's tree still takes in-place updates (it is not sealed).
	q, err := xtq.ParseQuery(`transform copy $a := doc("d") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xtq.Transform(doc, q, xtq.MethodCopyUpdate); err != nil {
		t.Fatal(err)
	}

	// Putting a snapshot under a second name copies too.
	snapB, comB, err := st.Put(ctx, "copy", snap)
	if err != nil {
		t.Fatal(err)
	}
	if comB.CopiedNodes == 0 || snapB.Root() == snap.Root() {
		t.Fatal("snapshot re-put aliased the sealed tree")
	}
}

func TestStoreViewsOverSnapshots(t *testing.T) {
	ctx := context.Background()
	st := xtq.NewStore(nil)
	if _, _, err := st.Put(ctx, "parts", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RegisterView("public",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`,
		`transform copy $a := doc("parts") modify do delete $a//country return $a`,
	); err != nil {
		t.Fatal(err)
	}
	if got := st.ViewNames(); len(got) != 1 || got[0] != "public" {
		t.Fatalf("ViewNames = %v", got)
	}
	v, err := st.LookupView("public")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := st.Snapshot("parts")

	// Materialize the stack over the snapshot.
	mat, err := v.Materialize(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	s := mat.String()
	if strings.Contains(s, "<price>") || strings.Contains(s, "<country>") {
		t.Fatalf("view leaked hidden elements: %s", s)
	}

	// Compose a user query with the stack, answered over the snapshot.
	pv, err := v.Prepare(`for $x in /db/part/supplier return <entry>{$x/sname}</entry>`)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := pv.Eval(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Layers) != 2 {
		t.Fatalf("stats for %d layers", len(stats.Layers))
	}
	if !strings.Contains(res.String(), "<sname>HP</sname>") {
		t.Fatalf("composed view result wrong: %s", res)
	}

	if _, err := st.LookupView("nope"); storeKind(t, err) != xtq.KindNotFound {
		t.Fatal("missing view kind != notfound")
	}
	if !st.RemoveView("public") || st.RemoveView("public") {
		t.Fatal("RemoveView bookkeeping wrong")
	}
}

// TestStoreConcurrentFacade drives the public API with 8 readers (half
// prepared queries, half composed views) and one writer — the facade
// variant of the internal concurrency tests, run under -race in CI.
func TestStoreConcurrentFacade(t *testing.T) {
	ctx := context.Background()
	st := xtq.NewStore(nil)
	if _, _, err := st.Put(ctx, "parts", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}
	p, err := st.Engine().Prepare(`transform copy $a := doc("parts") modify do rename $a//supplier as vendor return $a`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.RegisterView("nopx",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := v.Prepare(`for $x in /db/part return <row>{$x/pname}</row>`)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := st.Snapshot("parts")
				if err != nil {
					panic(err)
				}
				if i%2 == 0 {
					if _, err := p.Eval(ctx, snap); err != nil {
						panic(err)
					}
				} else {
					if _, _, err := pv.Eval(ctx, snap); err != nil {
						panic(err)
					}
				}
			}
		}(i)
	}
	up := `transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`
	var last uint64
	for i := 0; i < 20; i++ {
		snap, _, err := st.Apply(ctx, "parts", up)
		if err != nil {
			t.Error(err)
			break
		}
		last = snap.Version()
	}
	close(stop)
	wg.Wait()
	if last != 21 {
		t.Fatalf("final version = %d, want 21", last)
	}
}

// TestOpenStoreDurableFacade exercises the facade durable path:
// recovery replays logged update text through the engine's Prepare
// (sharing its query cache), version history is servable, and a damaged
// log surfaces as KindCorrupt.
func TestOpenStoreDurableFacade(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := xtq.OpenStore(dir, nil, xtq.WithFsync(xtq.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable() {
		t.Fatal("OpenStore returned a non-durable store")
	}
	if _, _, err := st.Put(ctx, "parts", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}
	del := `transform copy $a := doc("parts") modify do delete $a//price return $a`
	if _, _, err := st.Apply(ctx, "parts", del); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh engine: recovery goes through Prepare, so the
	// replayed query lands in the engine cache.
	eng := xtq.NewEngine()
	st2, err := xtq.OpenStore(dir, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, misses, size := eng.CacheStats(); misses != 1 || size != 1 {
		t.Fatalf("recovery did not warm the query cache: misses=%d size=%d", misses, size)
	}
	snap, err := st2.Snapshot("parts")
	if err != nil || snap.Version() != 2 {
		t.Fatalf("recovered snapshot: %v, %v", snap, err)
	}
	if strings.Contains(snap.Root().String(), "<price>") {
		t.Fatal("recovered state missing the update")
	}
	old, err := st2.SnapshotAt(ctx, "parts", 1)
	if err != nil || !strings.Contains(old.Root().String(), "<price>") {
		t.Fatalf("time travel to v1: %v", err)
	}
	entries, floor, err := st2.History("parts")
	if err != nil || floor != 1 || len(entries) != 2 {
		t.Fatalf("history = %v, floor %d, %v", entries, floor, err)
	}
	if ok, err := st2.Remove("parts"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if stats, err := st2.Checkpoint(ctx); err != nil || stats.TombstonesGCd != 1 {
		t.Fatalf("checkpoint = %+v, %v", stats, err)
	}
	st2.Close()

	// Flip a byte mid-log → KindCorrupt with a position.
	st3, err := xtq.OpenStore(dir, nil, xtq.WithFsync(xtq.FsyncNone), xtq.WithSegmentBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st3.Put(ctx, "parts", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st3.Apply(ctx, "parts", del); err != nil {
		t.Fatal(err)
	}
	st3.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil || len(b) == 0 {
		t.Fatalf("read segment: %v", err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = xtq.OpenStore(dir, nil)
	var xe *xtq.Error
	if !errors.As(err, &xe) || xe.Kind != xtq.KindCorrupt || xe.Pos == "" {
		t.Fatalf("corrupt log opened as %v", err)
	}
}
