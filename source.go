package xtq

import (
	"io"
	"sync"

	"xtq/internal/sax"
	"xtq/internal/saxeval"
)

// Source supplies one input document to Prepared.Eval and
// Prepared.EvalStream. The contract is repeatable reads: Open may be
// called more than once and each call must yield the document from the
// start (the streaming evaluator parses its input twice). Every input
// shape shares this one interface:
//
//	doc                    // *Node is a Source: an already-parsed tree
//	xtq.FileSource("x.xml")
//	xtq.BytesSource(b)
//	xtq.FromString(s)
//	xtq.FromReader(r)      // buffers the reader on first use
type Source = saxeval.Source

// FileSource streams a document from a file path; the intended
// configuration for documents too large for a DOM.
type FileSource = saxeval.FileSource

// BytesSource streams a document from memory.
type BytesSource = saxeval.BytesSource

// FromString sources a document from query-sized in-memory text.
func FromString(s string) Source { return BytesSource(s) }

// FromReader sources a document from an arbitrary reader. Source demands
// repeatable reads and a reader has only one, so the content is read
// fully into memory on first Open and served from there afterwards; use
// a FileSource to stream large documents without buffering.
func FromReader(r io.Reader) Source { return &readerSource{r: r} }

type readerSource struct {
	once sync.Once
	r    io.Reader
	data []byte
	err  error
}

// Open implements Source.
func (s *readerSource) Open() (io.ReadCloser, error) {
	s.once.Do(func() {
		s.data, s.err = io.ReadAll(s.r)
		s.r = nil
	})
	if s.err != nil {
		return nil, s.err
	}
	return BytesSource(s.data).Open()
}

// Handler receives the SAX event stream of a document: the five-event
// model of the paper's §6 (startDocument, startElement, text, endElement,
// endDocument). Implement it to consume EvalStream output structurally
// instead of as serialized bytes.
type Handler = sax.Handler

// Sink receives the transformed document from Prepared.EvalStream.
// Handler is invoked for every output event; Flush runs once after a
// successful evaluation.
type Sink interface {
	Handler() Handler
	Flush() error
}

// ToWriter returns a Sink serializing the output document to w as XML.
func ToWriter(w io.Writer) Sink {
	sw := sax.NewWriter(w)
	return writerSink{sw}
}

type writerSink struct{ w *sax.Writer }

func (s writerSink) Handler() Handler { return s.w }
func (s writerSink) Flush() error     { return s.w.Flush() }

// ToHandler returns a Sink forwarding output events to h verbatim.
func ToHandler(h Handler) Sink { return handlerSink{h} }

type handlerSink struct{ h Handler }

func (s handlerSink) Handler() Handler { return s.h }
func (handlerSink) Flush() error       { return nil }

// Discard returns a Sink that drops the output; it evaluates the query
// for its statistics alone (validation runs, benchmarks).
func Discard() Sink { return handlerSink{discardHandler{}} }

type discardHandler struct{}

func (discardHandler) StartDocument() error              { return nil }
func (discardHandler) StartElement(string, []Attr) error { return nil }
func (discardHandler) Text(string) error                 { return nil }
func (discardHandler) EndElement(string) error           { return nil }
func (discardHandler) EndDocument() error                { return nil }
