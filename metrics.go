package xtq

import "xtq/internal/obs"

// Engine instruments on the process-wide obs registry. Cache counters
// are labeled by which of the engine's three LRUs they describe
// ("query", "plan", "verdict"); evaluation latency is labeled by the
// method actually run so regressions in one strategy don't hide in an
// aggregate.
var (
	mCacheHits = obs.Default.CounterVec("xtq_engine_cache_hits_total",
		"Engine LRU cache hits by cache (query, plan, verdict).", "cache")
	mCacheMisses = obs.Default.CounterVec("xtq_engine_cache_misses_total",
		"Engine LRU cache misses by cache (query, plan, verdict).", "cache")
	mCompileSeconds = obs.Default.Histogram("xtq_engine_compile_seconds",
		"Parse+compile latency of cache-missing Prepare calls.")
	mEvalSeconds = obs.Default.HistogramVec("xtq_engine_eval_seconds",
		"In-memory evaluation latency by method.", "method")
)
