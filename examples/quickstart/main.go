// Quickstart: evaluate a transform query — a query written in update
// syntax that returns the updated tree without touching the source
// (Example 1.1 of the paper).
package main

import (
	"fmt"
	"log"
	"os"

	"xtq"
)

const doc = `<db>
  <part><pname>keyboard</pname>
    <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
    <supplier><sname>Logi</sname><price>12</price><country>DE</country></supplier>
  </part>
  <part><pname>mouse</pname>
    <supplier><sname>Dell</sname><price>9</price><country>US</country></supplier>
  </part>
</db>`

func main() {
	source, err := xtq.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// "Find all the information in the document except price."
	q, err := xtq.ParseQuery(
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	view, err := xtq.Transform(source, q, xtq.MethodTopDown)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresult (prices removed):")
	view.WriteIndented(os.Stdout)

	fmt.Println("\nsource still intact:")
	source.WriteIndented(os.Stdout)
}
