// Quickstart: evaluate a transform query — a query written in update
// syntax that returns the updated tree without touching the source
// (Example 1.1 of the paper) — through the Engine/Prepared API: the
// engine compiles the query once, the prepared statement is then
// evaluated over any number of documents.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"xtq"
)

const doc = `<db>
  <part><pname>keyboard</pname>
    <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
    <supplier><sname>Logi</sname><price>12</price><country>DE</country></supplier>
  </part>
  <part><pname>mouse</pname>
    <supplier><sname>Dell</sname><price>9</price><country>US</country></supplier>
  </part>
</db>`

func main() {
	ctx := context.Background()
	eng := xtq.NewEngine(xtq.WithMethod(xtq.MethodTopDown))

	// "Find all the information in the document except price."
	p, err := eng.Prepare(
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", p)

	source, err := xtq.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// A *Node is a Source; p.Eval(ctx, xtq.FromString(doc)) would parse
	// and evaluate in one step.
	view, err := p.Eval(ctx, source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresult (prices removed):")
	view.WriteIndented(os.Stdout)

	fmt.Println("\nsource still intact:")
	source.WriteIndented(os.Stdout)
}
