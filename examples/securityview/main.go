// Security views (Example 1.1, second application): a per-group virtual
// view that hides price information from suppliers of certain countries.
// The view is defined with update syntax, prepared once on an Engine,
// kept virtual (never materialized), and user queries are composed with
// it so each composition runs directly on the source document.
package main

import (
	"context"
	"fmt"
	"log"

	"xtq"
)

const doc = `<db>
  <part><pname>keyboard</pname>
    <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
    <supplier><sname>Spy Corp</sname><price>1</price><country>C1</country></supplier>
  </part>
  <part><pname>mouse</pname>
    <supplier><sname>Dell</sname><price>9</price><country>C2</country></supplier>
  </part>
</db>`

func main() {
	ctx := context.Background()
	source, err := xtq.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// The access-control policy: users in this group must not see
	// prices of suppliers based in countries C1 and C2. Preparing it on
	// the engine compiles the view definition once for all user queries.
	eng := xtq.NewEngine()
	view, err := eng.Prepare(`transform copy $a := doc("parts") modify
		do delete $a//supplier[country = "C1" or country = "C2"]/price return $a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("security view definition:")
	fmt.Println(" ", view)

	// A user queries the view for all suppliers and their prices.
	user, err := xtq.ParseUserQuery(
		`for $x in /db/part/supplier return <entry>{$x/sname}{$x/price}</entry>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuser query over the view:")
	fmt.Println(" ", user)

	// Compose the two: one pass over the source, no materialized view.
	comp, err := view.Compose(user)
	if err != nil {
		log.Fatal(err)
	}
	result, err := comp.EvalContext(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomposed result (sensitive prices absent):")
	fmt.Println(" ", result)

	fmt.Println("\ncomposed query in XQuery form:")
	fmt.Println(comp.XQueryText())
}
