// Security views (Example 1.1, second application), stacked: a per-group
// virtual view that hides price information from suppliers of certain
// countries, with a second view layered on top that hides the country
// names themselves. The stack is built once with Engine.View, kept
// virtual (never materialized), and user queries prepared against it run
// in a single pass over the source document.
package main

import (
	"context"
	"fmt"
	"log"

	"xtq"
)

const doc = `<db>
  <part><pname>keyboard</pname>
    <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
    <supplier><sname>Spy Corp</sname><price>1</price><country>C1</country></supplier>
  </part>
  <part><pname>mouse</pname>
    <supplier><sname>Dell</sname><price>9</price><country>C2</country></supplier>
  </part>
</db>`

func main() {
	ctx := context.Background()
	eng := xtq.NewEngine()

	// The access-control policy, as a stack of two view layers: users in
	// this group must not see prices of suppliers based in countries C1
	// and C2 (layer 1), nor where any supplier is based (layer 2, a
	// security view defined over the output of layer 1). Each layer is
	// an ordinary transform query; the engine compiles both once.
	view, err := eng.View(
		`transform copy $a := doc("parts") modify
			do delete $a//supplier[country = "C1" or country = "C2"]/price return $a`,
		`transform copy $a := doc("parts") modify
			do delete $a//supplier/country return $a`,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("security view stack:")
	for i := 0; i < view.Layers(); i++ {
		fmt.Printf("  layer %d: %s\n", i, view.Layer(i))
	}

	// A user queries the view for all suppliers with price and country.
	// Prepare composes the user query with both layers into one plan
	// (cached on the engine) that navigates the source document directly.
	user, err := view.Prepare(
		`for $x in /db/part/supplier return <entry>{$x/sname}{$x/price}{$x/country}</entry>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuser query over the view:")
	fmt.Println(" ", user.UserQuery())

	result, stats, err := user.Eval(ctx, xtq.FromString(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomposed result (sensitive prices and all countries absent):")
	fmt.Println(" ", result)

	// Per-layer statistics show each layer touching only the region the
	// user query navigates.
	for i, ls := range stats.Layers {
		fmt.Printf("layer %d: %d nodes consumed, %d materialized\n",
			i, ls.NodesVisited, ls.Materialized)
	}
}
