// Streaming evaluation (twoPassSAX, §6): evaluate a prepared transform
// query over a document streamed from disk in two SAX passes, with
// memory bounded by the document depth — the configuration that handles
// the paper's 224 MB-1.1 GB files. The evaluation takes a context:
// cancelling it aborts the stream at SAX-event granularity, which this
// example demonstrates with a deliberately tight timeout.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"xtq"
)

func main() {
	dir, err := os.MkdirTemp("", "xtq-streaming")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a document on disk (bump the factor to try the paper's
	// gigabyte-scale runs; memory use stays flat).
	path := filepath.Join(dir, "auctions.xml")
	n, err := xtq.WriteXMarkFile(xtq.XMarkConfig{Factor: 0.05, Seed: 42}, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %.1f MB\n", path, float64(n)/1e6)

	eng := xtq.NewEngine()
	p, err := eng.Prepare(`transform copy $a := doc("auctions") modify
		do delete $a/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text
		return $a`)
	if err != nil {
		log.Fatal(err)
	}

	out, err := os.Create(filepath.Join(dir, "result.xml"))
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	res, err := p.EvalStream(context.Background(), xtq.FileSource(path), xtq.ToWriter(out))
	if err != nil {
		log.Fatal(err)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	st, _ := out.Stat()
	fmt.Printf("result: %.1f MB written\n", float64(st.Size())/1e6)
	fmt.Printf("first pass:  %d elements, %d pruned, stack depth %d, %d qualifier values in L_d\n",
		res.First.ElementsSeen, res.First.ElementsPruned, res.First.MaxStackDepth, res.QualOccurrences)
	fmt.Printf("second pass: %d elements, stack depth %d\n",
		res.Second.ElementsSeen, res.Second.MaxStackDepth)
	fmt.Printf("heap growth during run: %.1f MB (independent of file size)\n",
		float64(after.HeapAlloc-min(after.HeapAlloc, before.HeapAlloc))/1e6)

	// Cancellation: a context that expires almost immediately stops the
	// stream mid-document with a typed, classified error.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
	defer cancel()
	_, err = p.EvalStream(ctx, xtq.FileSource(path), xtq.Discard())
	var xe *xtq.Error
	if errors.As(err, &xe) {
		fmt.Printf("cancelled run: kind=%v, deadline exceeded=%v\n",
			xe.Kind, errors.Is(err, context.DeadlineExceeded))
	} else {
		fmt.Printf("cancelled run finished before the deadline (err=%v)\n", err)
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
