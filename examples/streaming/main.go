// Streaming evaluation (twoPassSAX, §6): evaluate a transform query over a
// document streamed from disk in two SAX passes, with memory bounded by
// the document depth — the configuration that handles the paper's
// 224 MB-1.1 GB files.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"xtq"
)

func main() {
	dir, err := os.MkdirTemp("", "xtq-streaming")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a document on disk (bump the factor to try the paper's
	// gigabyte-scale runs; memory use stays flat).
	path := filepath.Join(dir, "auctions.xml")
	n, err := xtq.WriteXMarkFile(xtq.XMarkConfig{Factor: 0.05, Seed: 42}, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %.1f MB\n", path, float64(n)/1e6)

	q, err := xtq.ParseQuery(`transform copy $a := doc("auctions") modify
		do delete $a/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text
		return $a`)
	if err != nil {
		log.Fatal(err)
	}

	out, err := os.Create(filepath.Join(dir, "result.xml"))
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	res, err := xtq.TransformStream(q, xtq.FileSource(path), out)
	if err != nil {
		log.Fatal(err)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	st, _ := out.Stat()
	fmt.Printf("result: %.1f MB written\n", float64(st.Size())/1e6)
	fmt.Printf("first pass:  %d elements, %d pruned, stack depth %d, %d qualifier values in L_d\n",
		res.First.ElementsSeen, res.First.ElementsPruned, res.First.MaxStackDepth, res.QualOccurrences)
	fmt.Printf("second pass: %d elements, stack depth %d\n",
		res.Second.ElementsSeen, res.Second.MaxStackDepth)
	fmt.Printf("heap growth during run: %.1f MB (independent of file size)\n",
		float64(after.HeapAlloc-min(after.HeapAlloc, before.HeapAlloc))/1e6)
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
