// Updating virtual views (Example 1.1, third application): pose an update
// against a view that is never materialized, then answer user queries as
// if the update had happened, by composing the user query with a transform
// query prepared on an Engine. The Compose Method is compared against the
// Naive (sequential) composition on generated XMark data.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"xtq"
)

func main() {
	ctx := context.Background()

	// Generate a small auction site document (see cmd/xmarkgen for the
	// file-based generator).
	doc, err := xtq.GenerateXMark(xtq.XMarkConfig{Factor: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements\n", doc.CountElements())

	// The "update" on the virtual view: withdraw all items located in
	// the United States.
	eng := xtq.NewEngine()
	qt, err := eng.Prepare(`transform copy $a := doc("site") modify
		do delete $a/site/regions//item[location = "United States"] return $a`)
	if err != nil {
		log.Fatal(err)
	}

	// The user asks for item names as they would appear after the
	// update.
	user, err := xtq.ParseUserQuery(
		`for $x in /site/regions//item return <item>{$x/name}{$x/location}</item>`)
	if err != nil {
		log.Fatal(err)
	}

	naive, err := qt.NaiveCompose(user)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	nres, err := naive.EvalContext(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	naiveTime := time.Since(start)

	comp, err := qt.Compose(user)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	cres, err := comp.EvalContext(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	composeTime := time.Since(start)

	if nres.String() != cres.String() {
		log.Fatal("compose and naive composition disagree")
	}
	fmt.Printf("surviving items: %d\n", len(cres.Root().Children))
	fmt.Printf("naive composition: %v (materializes the whole view)\n", naiveTime)
	fmt.Printf("compose method:    %v (single pass, %d nodes visited)\n",
		composeTime, comp.LastStats.NodesVisited)
}
