// Updating virtual views (Example 1.1, third application): pose updates
// against a view that is never materialized, then answer user queries as
// if the updates had happened. Here two updates are stacked — withdraw
// US items, then tag everything that survived — and the single-pass
// stacked evaluation is compared against sequentially materializing each
// layer, on generated XMark data.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"xtq"
)

func main() {
	ctx := context.Background()

	// Generate a small auction site document (see cmd/xmarkgen for the
	// file-based generator).
	doc, err := xtq.GenerateXMark(xtq.XMarkConfig{Factor: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements\n", doc.CountElements())

	// The stacked "updates" on the virtual view: withdraw all items
	// located in the United States, then mark the surviving items as
	// available — the second layer transforms the first layer's output,
	// but neither view is ever built.
	eng := xtq.NewEngine()
	view, err := eng.View(
		`transform copy $a := doc("site") modify
			do delete $a/site/regions//item[location = "United States"] return $a`,
		`transform copy $a := doc("site") modify
			do insert <available/> into $a/site/regions//item return $a`,
	)
	if err != nil {
		log.Fatal(err)
	}

	// The user asks for item names as they would appear after both
	// updates.
	q, err := view.Prepare(
		`for $x in /site/regions//item return <item>{$x/name}{$x/location}{$x/available}</item>`)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	nres, err := q.EvalSequential(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	naiveTime := time.Since(start)

	start = time.Now()
	cres, stats, err := q.Eval(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	composeTime := time.Since(start)

	if nres.String() != cres.String() {
		log.Fatal("stacked eval and sequential materialization disagree")
	}
	fmt.Printf("surviving items: %d\n", len(cres.Root().Children))
	fmt.Printf("sequential:  %v (materializes every layer)\n", naiveTime)
	fmt.Printf("single pass: %v (%d nodes visited, %d materialized)\n",
		composeTime, stats.NodesVisited, stats.Materialized)
	for i, ls := range stats.Layers {
		fmt.Printf("  layer %d: %d consumed, %d materialized\n", i, ls.NodesVisited, ls.Materialized)
	}
}
