// Hypothetical queries ("Q when {U}"): answer "what would Q return if
// update U had been applied?" without applying U. The transform query
// carries U; a View built from it answers user queries in a single pass
// over the unchanged database (§1 and §4 of the paper). The view is
// prepared once on an Engine, so asking many hypothetical questions
// against the same update compiles nothing twice — and the composition
// plans themselves are cached per (view, user query).
package main

import (
	"context"
	"fmt"
	"log"

	"xtq"
)

func main() {
	ctx := context.Background()
	doc, err := xtq.GenerateXMark(xtq.XMarkConfig{Factor: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	eng := xtq.NewEngine()

	// Hypothesis: qualifying open auctions get a "flagged" marker
	// inserted.
	view, err := eng.View(`transform copy $a := doc("site") modify
		do insert <flagged>review</flagged> into $a/site/open_auctions/open_auction[initial > 10 and reserve > 50]
		return $a`)
	if err != nil {
		log.Fatal(err)
	}

	// Question: which auctions would carry the marker?
	q, err := view.Prepare(
		`for $x in /site/open_auctions/open_auction where $x/flagged = "review" return <hit>{$x/@id}</hit>`)
	if err != nil {
		log.Fatal(err)
	}

	res, stats, err := q.Eval(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hypothetical update:", view.Layer(0))
	fmt.Println("question:           ", q.UserQuery())
	fmt.Printf("auctions that would be flagged: %d (%d nodes visited, %d materialized)\n",
		len(res.Root().Children), stats.NodesVisited, stats.Materialized)
	for i, hit := range res.Root().Children {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", hit.Value())
	}

	// The database itself is untouched:
	check, _ := xtq.ParseUserQuery(`for $x in /site/open_auctions/open_auction where $x/flagged = "review" return $x`)
	actual, err := check.Eval(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auctions actually flagged in the source: %d\n", len(actual.Root().Children))
}
