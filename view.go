package xtq

import (
	"context"
	"strings"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/xquery"
)

// ViewStats reports the work of one stacked-view evaluation: totals plus
// one entry per transform layer (LayerStats), substantiating the paper's
// "touches only the relevant region" claim per layer. It is returned by
// value from PreparedView.Eval, so results of concurrent evaluations
// never share state.
type ViewStats = compose.ViewStats

// LayerStats counts the virtual nodes one transform layer's automaton
// consumed and the result nodes built while that layer was live.
type LayerStats = compose.Stats

// View is a virtual document defined by a stack of one or more transform
// queries applied in order: the first transforms the source document,
// each later one transforms the previous layer's virtual output. Stacks
// express the composition chains of the paper's applications — a
// security view over a virtual update over a hypothetical state —
// without materializing any layer:
//
//	v, err := eng.View(
//	    `transform copy $a := doc("d") modify do insert <audit/> into $a/db/part return $a`,
//	    `transform copy $a := doc("d") modify do delete $a/db/part/price return $a`,
//	)
//	pv, err := v.Prepare(`for $x in /db/part return <row>{$x/pname}</row>`)
//	res, stats, err := pv.Eval(ctx, xtq.FileSource("db.xml"))
//
// A View is immutable and safe for concurrent use; the compiled
// transforms inside are shared through the engine's query cache.
type View struct {
	eng   *Engine
	stack []*Prepared
	key   string
}

// View builds a virtual view from a stack of transform query sources,
// compiling each through the engine's query cache. At least one
// transform is required.
func (e *Engine) View(transformSrcs ...string) (*View, error) {
	if err := e.validateMethod(); err != nil {
		return nil, err
	}
	if len(transformSrcs) == 0 {
		return nil, &Error{Kind: KindCompile, Msg: "xtq: a view requires at least one transform query"}
	}
	stack := make([]*Prepared, len(transformSrcs))
	keys := make([]string, len(transformSrcs))
	for i, src := range transformSrcs {
		p, err := e.Prepare(src)
		if err != nil {
			return nil, err
		}
		stack[i] = p
		// The canonical rendering, not the raw source, keys the view:
		// textual variants of the same query share cached plans.
		keys[i] = p.String()
	}
	return &View{eng: e, stack: stack, key: strings.Join(keys, "\x1f")}, nil
}

// Layers returns the number of transform layers in the view stack.
func (v *View) Layers() int { return len(v.stack) }

// Layer returns the prepared transform of layer i (0 is applied first).
func (v *View) Layer(i int) *Prepared { return v.stack[i] }

// String renders the view stack, innermost transform first.
func (v *View) String() string {
	var b strings.Builder
	b.WriteString("view[")
	for i, p := range v.stack {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("]")
	return b.String()
}

// Materialize evaluates the transform stack over src layer by layer with
// the engine's method and returns the fully materialized view — the
// baseline the virtual machinery avoids; useful for exporting a view or
// validating one against Prepare/Eval.
func (v *View) Materialize(ctx context.Context, src Source) (*Node, error) {
	doc, err := v.eng.parse(ctx, src)
	if err != nil {
		return nil, err
	}
	for _, p := range v.stack {
		doc, err = p.evalMethod(ctx, doc, v.eng.method)
		if err != nil {
			return nil, err
		}
	}
	return doc, nil
}

// Prepare parses a user query and composes it with the view stack into a
// goroutine-safe PreparedView, retrieving the composition plan from the
// engine's plan cache when the same (view stack, user query) pair was
// prepared before.
func (v *View) Prepare(userQuerySrc string) (*PreparedView, error) {
	q, err := xquery.Parse(userQuerySrc)
	if err != nil {
		return nil, classify(err, KindParse)
	}
	return v.prepare(q)
}

// PrepareQuery composes an already-parsed user query with the view
// stack, caching by the query's canonical rendering. Like
// Engine.PrepareQuery, the cached plan never aliases q when the
// rendering does not round-trip, so the caller remains free to mutate q.
func (v *View) PrepareQuery(q *UserQuery) (*PreparedView, error) {
	if q == nil {
		return nil, &Error{Kind: KindCompile, Msg: "xtq: nil user query"}
	}
	if err := q.Validate(); err != nil {
		return nil, classify(err, KindCompile)
	}
	own, err := xquery.Parse(q.String())
	if err != nil {
		// The rendering does not round-trip (e.g. a constant containing
		// a quote character). Build the plan from the live query and
		// skip the shared cache so its entries never alias
		// caller-mutable state.
		return v.newPreparedView(q, false)
	}
	return v.prepare(own)
}

// prepare builds or retrieves the PreparedView for a user query the view
// owns (no caller aliases it).
func (v *View) prepare(q *UserQuery) (*PreparedView, error) {
	return v.newPreparedView(q, true)
}

func (v *View) newPreparedView(q *UserQuery, cache bool) (*PreparedView, error) {
	key := v.key + "\x1f\x1f" + q.String()
	if cache {
		if p, ok := v.eng.plans.get(key); ok {
			return &PreparedView{view: v, plan: p.(*compose.Plan)}, nil
		}
	}
	layers := make([]*core.Compiled, len(v.stack))
	for i, p := range v.stack {
		layers[i] = p.compiled
	}
	plan, err := compose.NewPlan(layers, q)
	if err != nil {
		return nil, classify(err, KindCompile)
	}
	if cache {
		v.eng.plans.add(key, plan)
	}
	return &PreparedView{view: v, plan: plan}, nil
}

// PreparedView is a user query composed with a view stack: the
// composition plan is built (or fetched from the engine's plan cache)
// once, then evaluated over any number of documents. A PreparedView is
// immutable and safe for concurrent use by multiple goroutines — every
// evaluation carries its own state and statistics are returned by value.
type PreparedView struct {
	view *View
	plan *compose.Plan
}

// View returns the view stack this query was prepared against.
func (pv *PreparedView) View() *View { return pv.view }

// UserQuery returns the composed user query. Treat it as read-only: the
// plan (possibly shared through the engine cache) reflects the query at
// Prepare time.
func (pv *PreparedView) UserQuery() *UserQuery { return pv.plan.User() }

// String identifies the prepared composition.
func (pv *PreparedView) String() string { return pv.plan.String() }

// Eval answers the user query over the virtual view of src in a single
// pass — no layer of the stack is materialized — returning a document
// with a <result> root and the per-layer statistics of the run. src is
// any Source; an already-parsed *Node evaluates directly. Cancelling ctx
// aborts navigation at node granularity with a KindEval error satisfying
// errors.Is(err, context.Canceled).
func (pv *PreparedView) Eval(ctx context.Context, src Source) (*Node, ViewStats, error) {
	doc, err := pv.view.eng.parse(ctx, src)
	if err != nil {
		return nil, ViewStats{}, err
	}
	out, vs, err := pv.plan.Eval(ctx, doc)
	if err != nil {
		return nil, vs, classify(err, KindEval)
	}
	return out, vs, nil
}

// EvalSequential answers the same query the naive way: materialize every
// layer of the stack with the engine's method, then run the user query
// over the final tree. It is the baseline Eval is measured against and
// the oracle the property tests compare Eval to.
func (pv *PreparedView) EvalSequential(ctx context.Context, src Source) (*Node, error) {
	doc, err := pv.view.eng.parse(ctx, src)
	if err != nil {
		return nil, err
	}
	out, err := pv.plan.EvalSequential(ctx, doc, pv.view.eng.method)
	if err != nil {
		return nil, classify(err, KindEval)
	}
	return out, nil
}
